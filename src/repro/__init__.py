"""Qcluster: relevance feedback using adaptive clustering for CBIR.

A full reproduction of Kim & Chung, SIGMOD 2003.  The public API is the
union of the subpackages:

* :mod:`repro.core` — the paper's contribution: adaptive Bayesian
  classification, Hotelling-``T^2`` cluster merging, the disjunctive
  aggregate distance and the :class:`~repro.core.qcluster.QclusterEngine`
  feedback loop.
* :mod:`repro.stats` — from-scratch chi-square/F quantiles, weighted
  moments and Hotelling's two-sample test.
* :mod:`repro.clustering` — agglomerative clustering for the initial
  feedback round.
* :mod:`repro.features` — HSV color moments and GLCM texture extraction.
* :mod:`repro.datasets` — synthetic Gaussian data and the procedural
  image-collection surrogate for Corel/Mantan.
* :mod:`repro.index` — page-bucketed kd tree with cached multipoint k-NN.
* :mod:`repro.retrieval` — databases, simulated users, feedback
  sessions, metrics and batch runners.
* :mod:`repro.baselines` — QPM, QEX, FALCON and MindReader.
* :mod:`repro.service` — the concurrent multi-session retrieval
  service: session store with TTL/LRU eviction and checkpoints, result
  caching, graceful degradation and operational metrics.
* :mod:`repro.obs` — structured tracing across the pipeline: nested
  timed spans with algorithmic events, JSONL / console / Prometheus
  exporters, and a no-op default tracer for production hot paths.
* :mod:`repro.faults` — deterministic, seeded fault injection behind
  named sites, plus the chaos plans the CI resilience suite replays;
  fully inert unless a :class:`~repro.faults.FaultPlan` is activated.
* :mod:`repro.store` — the memory-mapped, content-addressed feature
  store: epoch-stamped header, per-block CRCs, float32 shard blocks
  with optional PCA-prefix coarse companions, quarantine on corruption.
* :mod:`repro.parallel` — spawn-safe worker processes scanning the
  store's shards zero-copy, merged byte-identically to the serial scan.

Quickstart::

    from repro.core import QclusterEngine
    from repro.retrieval import FeatureDatabase, FeedbackSession, QclusterMethod

    database = FeatureDatabase(vectors, labels)
    session = FeedbackSession(database, QclusterMethod(), k=100)
    result = session.run(query_index=0, n_iterations=5)
    print(result.recalls)
"""

from .core import (
    BayesianClassifier,
    Cluster,
    ClusterMerger,
    CompiledQuery,
    DisjunctiveQuery,
    ProgressiveScan,
    QclusterConfig,
    QclusterEngine,
    compile_query,
    use_kernels,
    use_progressive,
)
from .faults import FaultClock, FaultPlan, FaultSpec, InjectedFault, activate_faults
from .faults.plans import builtin_plan, builtin_plans
from .index import HybridTree, MultipointSearcher
from .obs import (
    NULL_TRACER,
    JsonlTraceLog,
    NullTracer,
    Tracer,
    prometheus_text,
    render_span_tree,
)
from .parallel import ShardWorkerPool
from .retrieval import (
    FeatureDatabase,
    FeedbackMethod,
    FeedbackSession,
    QclusterMethod,
    SimulatedUser,
)
from .retrieval.methods import QueryLike
from .service import (
    CheckpointCorruption,
    ResiliencePolicy,
    RetrievalService,
    ServiceMetrics,
    SessionNotFound,
    SessionStore,
)
from .store import FeatureStore, StoreBlockCorrupt, StoreFormatError, build_store
from .system import EXACT_QUALITY, ImageRetrievalSystem, ResultPage, ResultQuality

__version__ = "1.0.0"

__all__ = [
    "BayesianClassifier",
    "Cluster",
    "ClusterMerger",
    "CompiledQuery",
    "compile_query",
    "use_kernels",
    "ProgressiveScan",
    "use_progressive",
    "DisjunctiveQuery",
    "QclusterConfig",
    "QclusterEngine",
    "HybridTree",
    "MultipointSearcher",
    "FeatureDatabase",
    "FeedbackMethod",
    "FeedbackSession",
    "QclusterMethod",
    "QueryLike",
    "SimulatedUser",
    "RetrievalService",
    "ServiceMetrics",
    "SessionNotFound",
    "SessionStore",
    "CheckpointCorruption",
    "ResiliencePolicy",
    "FaultPlan",
    "FaultSpec",
    "FaultClock",
    "InjectedFault",
    "activate_faults",
    "builtin_plan",
    "builtin_plans",
    "FeatureStore",
    "StoreBlockCorrupt",
    "StoreFormatError",
    "build_store",
    "ShardWorkerPool",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlTraceLog",
    "render_span_tree",
    "prometheus_text",
    "ImageRetrievalSystem",
    "ResultPage",
    "ResultQuality",
    "EXACT_QUALITY",
    "__version__",
]
