"""Cluster-validation indices used by tests and ablation benches.

These are standard external/internal validation measures: the Rand
index and adjusted Rand index compare a clustering against ground-truth
labels (used to sanity-check the initial hierarchical clustering and
the synthetic classification experiments), and the silhouette
coefficient gives a label-free quality signal.
"""

from __future__ import annotations

from math import comb
from typing import Sequence

import numpy as np

from .agglomerative import pairwise_sq_euclidean

__all__ = ["rand_index", "adjusted_rand_index", "silhouette_score", "contingency_table"]


def contingency_table(labels_a: Sequence[int], labels_b: Sequence[int]) -> np.ndarray:
    """Cross-tabulation of two label assignments over the same points."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise ValueError(f"label vectors differ in length: {a.shape} vs {b.shape}")
    values_a, inverse_a = np.unique(a, return_inverse=True)
    values_b, inverse_b = np.unique(b, return_inverse=True)
    table = np.zeros((values_a.size, values_b.size), dtype=int)
    np.add.at(table, (inverse_a, inverse_b), 1)
    return table


def rand_index(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """Fraction of point pairs on which the two clusterings agree."""
    table = contingency_table(labels_a, labels_b)
    n = int(table.sum())
    if n < 2:
        raise ValueError("rand index needs at least two points")
    pairs_total = comb(n, 2)
    pairs_same_both = sum(comb(int(x), 2) for x in table.ravel())
    pairs_same_a = sum(comb(int(x), 2) for x in table.sum(axis=1))
    pairs_same_b = sum(comb(int(x), 2) for x in table.sum(axis=0))
    agreements = pairs_total + 2 * pairs_same_both - pairs_same_a - pairs_same_b
    return agreements / pairs_total


def adjusted_rand_index(labels_a: Sequence[int], labels_b: Sequence[int]) -> float:
    """Chance-corrected Rand index (Hubert & Arabie)."""
    table = contingency_table(labels_a, labels_b)
    n = int(table.sum())
    if n < 2:
        raise ValueError("adjusted rand index needs at least two points")
    sum_cells = sum(comb(int(x), 2) for x in table.ravel())
    sum_rows = sum(comb(int(x), 2) for x in table.sum(axis=1))
    sum_cols = sum(comb(int(x), 2) for x in table.sum(axis=0))
    pairs_total = comb(n, 2)
    expected = sum_rows * sum_cols / pairs_total
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0 if sum_cells == expected else 0.0
    return (sum_cells - expected) / (maximum - expected)


def silhouette_score(points: np.ndarray, labels: Sequence[int]) -> float:
    """Mean silhouette coefficient over all points (Euclidean distances).

    For each point, ``a`` is its mean distance to its own cluster and
    ``b`` the smallest mean distance to any other cluster; the silhouette
    is ``(b - a) / max(a, b)``.  Points in singleton clusters contribute 0
    by the usual convention.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    labels = np.asarray(labels)
    if labels.shape[0] != points.shape[0]:
        raise ValueError("need one label per point")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette requires at least two clusters")
    distances = np.sqrt(pairwise_sq_euclidean(points))
    scores = np.zeros(points.shape[0])
    for idx in range(points.shape[0]):
        own = labels[idx]
        own_mask = labels == own
        own_count = int(own_mask.sum())
        if own_count <= 1:
            scores[idx] = 0.0
            continue
        a = distances[idx, own_mask].sum() / (own_count - 1)
        b = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b = min(b, float(distances[idx, other_mask].mean()))
        denominator = max(a, b)
        scores[idx] = 0.0 if denominator == 0 else (b - a) / denominator
    return float(scores.mean())
