"""Lloyd's k-means with k-means++ seeding.

The paper bootstraps the first feedback round with hierarchical
clustering ("among numerous methods, we use the hierarchical clustering
algorithm", Section 4.1) — k-means is the obvious alternative among
those "numerous methods", so the engine exposes it as an option
(``QclusterConfig(initial_method="kmeans")``) and the ablation bench
compares the two.

Implemented from scratch: k-means++ initialization, Lloyd iterations
with empty-cluster re-seeding, and a deterministic RNG-seeded variant
for reproducible engine behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run.

    Attributes:
        labels: cluster index per input point.
        centers: ``(k, p)`` final centroids.
        inertia: sum of squared distances to assigned centroids.
        n_iterations: Lloyd iterations executed.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iterations: int

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to ``cluster``."""
        return np.nonzero(self.labels == cluster)[0]


def _squared_distances_to(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """``(n, k)`` squared Euclidean distances."""
    deltas = points[:, None, :] - centers[None, :, :]
    return np.einsum("nkp,nkp->nk", deltas, deltas)


def kmeans_plus_plus_init(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """k-means++ seeding: spread initial centers proportionally to D^2."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest = np.sum((points - centers[0]) ** 2, axis=1)
    for position in range(1, k):
        total = closest.sum()
        if total <= 0.0:
            # All remaining points coincide with a chosen center.
            centers[position] = points[int(rng.integers(n))]
            continue
        probabilities = closest / total
        choice = int(rng.choice(n, p=probabilities))
        centers[position] = points[choice]
        closest = np.minimum(closest, np.sum((points - centers[position]) ** 2, axis=1))
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> KMeansResult:
    """Lloyd's algorithm over the rows of ``points``.

    Args:
        points: ``(n, p)`` data matrix.
        k: number of clusters (clamped to ``n``).
        rng: seeding source; a fixed default keeps the engine
            deterministic.
        max_iterations: Lloyd iteration cap.
        tolerance: stop when total center movement falls below this.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty point set")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    k = min(k, n)
    rng = rng if rng is not None else np.random.default_rng(0)

    centers = kmeans_plus_plus_init(points, k, rng)
    labels = np.zeros(n, dtype=int)
    # ``iteration`` is read after the loop (it is the reported count).
    for iteration in range(1, max_iterations + 1):  # noqa: B007
        distances = _squared_distances_to(points, centers)
        labels = np.argmin(distances, axis=1)
        new_centers = centers.copy()
        for cluster in range(k):
            members = labels == cluster
            if members.any():
                new_centers[cluster] = points[members].mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its
                # current center (the standard fix).
                farthest = int(np.argmax(distances[np.arange(n), labels]))
                new_centers[cluster] = points[farthest]
        movement = float(np.sum((new_centers - centers) ** 2))
        centers = new_centers
        if movement < tolerance:
            break
    distances = _squared_distances_to(points, centers)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    # Compact labels so they are contiguous 0..k'-1 like the
    # agglomerative result.
    unique, labels = np.unique(labels, return_inverse=True)
    return KMeansResult(
        labels=labels,
        centers=centers[unique],
        inertia=inertia,
        n_iterations=iteration,
    )
