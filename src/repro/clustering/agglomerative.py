"""Agglomerative hierarchical clustering (paper Section 4.1 bootstrap).

Implements the textbook bottom-up procedure the paper sketches in
Section 3.1: start with every point in its own cluster, repeatedly merge
the closest pair, stop at a target cluster count and/or a distance
threshold.  Distances between merged clusters are maintained with the
Lance-Williams recurrence from :mod:`repro.clustering.linkage`.

This is only used for the *initial* feedback round (Algorithm 1 step 1);
subsequent rounds use the adaptive classification + merging machinery,
which is the paper's whole point ("constructs clusters and changes them
without performing complete re-clustering").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .linkage import LINKAGES, lance_williams_update

__all__ = ["MergeStep", "AgglomerativeResult", "AgglomerativeClusterer", "pairwise_sq_euclidean"]


def pairwise_sq_euclidean(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` matrix of squared Euclidean distances."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    squared_norms = np.einsum("ij,ij->i", points, points)
    gram = points @ points.T
    distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


@dataclass(frozen=True)
class MergeStep:
    """One merge of the dendrogram: clusters ``first``/``second`` at ``distance``."""

    first: int
    second: int
    distance: float
    size: int


@dataclass(frozen=True)
class AgglomerativeResult:
    """Flat clustering extracted from the dendrogram.

    Attributes:
        labels: length-``n`` cluster index per input point (0-based,
            contiguous).
        n_clusters: number of distinct labels.
        merges: the merge steps actually executed, in order.
    """

    labels: np.ndarray
    n_clusters: int
    merges: Tuple[MergeStep, ...]

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the points assigned to ``cluster``."""
        return np.nonzero(self.labels == cluster)[0]


class AgglomerativeClusterer:
    """Bottom-up clustering with a Lance-Williams distance matrix.

    Args:
        n_clusters: stop when this many clusters remain (default 1, i.e.
            build the full dendrogram unless a threshold stops earlier).
        linkage: one of ``single``, ``complete``, ``average``, ``weighted``,
            ``ward``.  Ward interprets distances as squared Euclidean,
            which is also what :func:`pairwise_sq_euclidean` produces, so
            all criteria share one distance matrix convention here.
        distance_threshold: optional; stop before any merge whose linkage
            distance exceeds it (yields a data-driven cluster count).
    """

    def __init__(
        self,
        n_clusters: int = 1,
        linkage: str = "average",
        distance_threshold: Optional[float] = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be at least 1, got {n_clusters}")
        if linkage not in LINKAGES:
            valid = ", ".join(sorted(LINKAGES))
            raise ValueError(f"unknown linkage {linkage!r}; expected one of: {valid}")
        if distance_threshold is not None and distance_threshold < 0:
            raise ValueError(
                f"distance_threshold must be non-negative, got {distance_threshold}"
            )
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.distance_threshold = distance_threshold

    def fit(self, points: np.ndarray) -> AgglomerativeResult:
        """Cluster the rows of ``points``."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        n = points.shape[0]
        if n == 0:
            raise ValueError("cannot cluster an empty point set")
        if n <= self.n_clusters:
            labels = np.arange(n)
            return AgglomerativeResult(labels=labels, n_clusters=n, merges=())

        distances = pairwise_sq_euclidean(points)
        active = list(range(n))
        sizes = {i: 1 for i in range(n)}
        membership = {i: [i] for i in range(n)}
        merges: List[MergeStep] = []

        while len(active) > self.n_clusters:
            best = (np.inf, -1, -1)
            for a_pos in range(len(active)):
                i = active[a_pos]
                row = distances[i]
                for b_pos in range(a_pos + 1, len(active)):
                    j = active[b_pos]
                    if row[j] < best[0]:
                        best = (row[j], i, j)
            merge_distance, i, j = best
            if (
                self.distance_threshold is not None
                and merge_distance > self.distance_threshold
            ):
                break
            # Merge j into i; update distances via Lance-Williams.
            for k in active:
                if k in (i, j):
                    continue
                updated = lance_williams_update(
                    self.linkage,
                    distances[k, i],
                    distances[k, j],
                    merge_distance,
                    sizes[i],
                    sizes[j],
                    sizes[k],
                )
                distances[k, i] = updated
                distances[i, k] = updated
            membership[i].extend(membership.pop(j))
            sizes[i] += sizes.pop(j)
            active.remove(j)
            merges.append(
                MergeStep(first=i, second=j, distance=float(merge_distance), size=sizes[i])
            )

        labels = np.empty(n, dtype=int)
        for new_label, representative in enumerate(active):
            labels[membership[representative]] = new_label
        return AgglomerativeResult(
            labels=labels, n_clusters=len(active), merges=tuple(merges)
        )
