"""Hierarchical clustering substrate for the initial feedback round."""

from .agglomerative import (
    AgglomerativeClusterer,
    AgglomerativeResult,
    MergeStep,
    pairwise_sq_euclidean,
)
from .kmeans import KMeansResult, kmeans, kmeans_plus_plus_init
from .linkage import LINKAGES, lance_williams_update
from .validation import (
    adjusted_rand_index,
    contingency_table,
    rand_index,
    silhouette_score,
)

__all__ = [
    "AgglomerativeClusterer",
    "AgglomerativeResult",
    "MergeStep",
    "pairwise_sq_euclidean",
    "KMeansResult",
    "kmeans",
    "kmeans_plus_plus_init",
    "LINKAGES",
    "lance_williams_update",
    "adjusted_rand_index",
    "contingency_table",
    "rand_index",
    "silhouette_score",
]
