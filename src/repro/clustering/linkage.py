"""Linkage criteria for agglomerative clustering (Lance-Williams form).

The paper's Algorithm 1 bootstraps the very first feedback round with a
hierarchical clustering of the relevant images.  This module provides
the classic linkage criteria — single, complete, average (UPGMA),
weighted (WPGMA) and Ward — via their Lance-Williams recurrence

    d(k, i∪j) = a_i d(k,i) + a_j d(k,j) + b d(i,j) + c |d(k,i) - d(k,j)|

so a merge updates the distance matrix in O(n) without revisiting raw
points.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["lance_williams_update", "LINKAGES"]

Updater = Callable[[float, float, float, int, int, int], float]


def _single(d_ki: float, d_kj: float, d_ij: float, n_i: int, n_j: int, n_k: int) -> float:
    return min(d_ki, d_kj)


def _complete(d_ki: float, d_kj: float, d_ij: float, n_i: int, n_j: int, n_k: int) -> float:
    return max(d_ki, d_kj)


def _average(d_ki: float, d_kj: float, d_ij: float, n_i: int, n_j: int, n_k: int) -> float:
    total = n_i + n_j
    return (n_i * d_ki + n_j * d_kj) / total


def _weighted(d_ki: float, d_kj: float, d_ij: float, n_i: int, n_j: int, n_k: int) -> float:
    return 0.5 * (d_ki + d_kj)


def _ward(d_ki: float, d_kj: float, d_ij: float, n_i: int, n_j: int, n_k: int) -> float:
    # Ward on *squared* Euclidean distances.
    total = n_i + n_j + n_k
    return (
        (n_i + n_k) * d_ki + (n_j + n_k) * d_kj - n_k * d_ij
    ) / total


#: Registry of supported linkage criteria.  Ward assumes the distance
#: matrix holds squared Euclidean distances; the others work with any
#: dissimilarity.
LINKAGES: Dict[str, Updater] = {
    "single": _single,
    "complete": _complete,
    "average": _average,
    "weighted": _weighted,
    "ward": _ward,
}


def lance_williams_update(
    linkage: str,
    d_ki: float,
    d_kj: float,
    d_ij: float,
    n_i: int,
    n_j: int,
    n_k: int,
) -> float:
    """Distance from cluster ``k`` to the merge of ``i`` and ``j``."""
    try:
        updater = LINKAGES[linkage]
    except KeyError:
        valid = ", ".join(sorted(LINKAGES))
        raise ValueError(
            f"unknown linkage {linkage!r}; expected one of: {valid}"
        ) from None
    return updater(d_ki, d_kj, d_ij, n_i, n_j, n_k)
