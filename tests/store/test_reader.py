"""Store reader: zero-copy views, CRC quarantine, fault sites."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.datasets import FEATURE_DTYPE
from repro.faults import FaultPlan, FaultSpec, activate_faults
from repro.service.resilience import RetryPolicy, retry_call
from repro.store import FeatureStore, StoreBlockCorrupt, StoreFormatError, build_store


@pytest.fixture
def store_path(tmp_path, rng):
    vectors = rng.normal(size=(120, 5))
    return build_store(
        vectors, tmp_path / "r.qcs", n_shards=3, labels=np.arange(120) % 4
    )


def corrupt_block_on_disk(path, name="shard/0001"):
    """Flip one byte inside the named block of the store file."""
    store = FeatureStore.open(path)
    entry = store.header.block(name)
    offset = store._data_start + entry.offset + entry.nbytes // 2
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestViews:
    def test_shard_views_are_zero_copy_mmap(self, store_path):
        store = FeatureStore.open(store_path)
        shard = store.shard(0)
        assert shard.dtype == FEATURE_DTYPE
        assert shard.flags["C_CONTIGUOUS"]
        assert not shard.flags["OWNDATA"]  # a view into the mmap, not a copy

    def test_repeated_reads_return_the_same_object(self, store_path):
        store = FeatureStore.open(store_path)
        assert store.shard(1) is store.shard(1)

    def test_as_array_concatenates_in_row_order(self, store_path):
        store = FeatureStore.open(store_path)
        full = store.as_array()
        assert full.shape == (120, 5)
        bounds = store.row_offsets
        for i in range(store.n_shards):
            np.testing.assert_array_equal(
                full[bounds[i] : bounds[i + 1]], store.shard(i)
            )

    def test_labels_round_trip(self, store_path):
        store = FeatureStore.open(store_path)
        np.testing.assert_array_equal(store.labels(), np.arange(120) % 4)

    def test_shard_index_bounds_checked(self, store_path):
        store = FeatureStore.open(store_path)
        with pytest.raises(IndexError):
            store.shard(3)


class TestOpenValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StoreFormatError):
            FeatureStore.open(tmp_path / "absent.qcs")

    def test_not_a_store(self, tmp_path):
        path = tmp_path / "junk.qcs"
        path.write_bytes(b"definitely not a store file" * 10)
        with pytest.raises(StoreFormatError):
            FeatureStore.open(path)

    def test_truncated_data_detected_at_open(self, store_path):
        data = store_path.read_bytes()
        store_path.write_bytes(data[: len(data) - 64])
        with pytest.raises(StoreFormatError, match="truncated"):
            FeatureStore.open(store_path)


class TestCorruption:
    def test_crc_mismatch_raises_and_quarantines(self, store_path):
        corrupt_block_on_disk(store_path, "shard/0001")
        store = FeatureStore.open(store_path)
        store.shard(0)  # clean shards still serve
        with pytest.raises(StoreBlockCorrupt) as excinfo:
            store.shard(1)
        assert excinfo.value.block == "shard/0001"
        assert excinfo.value.reason == "crc_mismatch"
        assert store.quarantined == {"shard/0001": "crc_mismatch"}

    def test_quarantine_is_sticky(self, store_path):
        corrupt_block_on_disk(store_path)
        store = FeatureStore.open(store_path)
        for _ in range(3):
            with pytest.raises(StoreBlockCorrupt):
                store.shard(1)
        assert store.stats()["quarantined_blocks"] == 1

    def test_verify_reports_every_block(self, store_path):
        corrupt_block_on_disk(store_path)
        store = FeatureStore.open(store_path)
        report = store.verify()
        assert report["shard/0001"] == "crc_mismatch"
        clean = {name for name, reason in report.items() if reason == "ok"}
        assert clean == {"shard/0000", "shard/0002", "labels"}

    def test_corruption_is_permanent_for_retry_layers(self, store_path):
        corrupt_block_on_disk(store_path)
        store = FeatureStore.open(store_path)
        sleeps = []
        with pytest.raises(StoreBlockCorrupt):
            retry_call(
                lambda: store.shard(1),
                RetryPolicy(max_attempts=5),
                sleep=sleeps.append,
            )
        assert sleeps == []  # permanent: no backoff budget was burned

    def test_error_pickles_across_process_boundaries(self, store_path):
        error = StoreBlockCorrupt(str(store_path), "shard/0001", "torn_read")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, StoreBlockCorrupt)
        assert (clone.path, clone.block, clone.reason) == (
            str(store_path),
            "shard/0001",
            "torn_read",
        )
        assert clone.permanent


class TestFaultSites:
    def test_injected_torn_read_quarantines(self, store_path):
        store = FeatureStore.open(store_path)
        plan = FaultPlan(
            specs=(FaultSpec("store.block_read", "corrupt", key="shard/0002", at=(1,)),)
        )
        with activate_faults(plan):
            store.shard(0)  # other blocks unaffected
            with pytest.raises(StoreBlockCorrupt) as excinfo:
                store.shard(2)
        assert excinfo.value.reason == "torn_read"
        # Quarantine survives deactivation: the read itself was torn.
        with pytest.raises(StoreBlockCorrupt):
            store.shard(2)

    def test_injected_open_error(self, store_path):
        plan = FaultPlan(specs=(FaultSpec("store.open", "error", at=(1,)),))
        with activate_faults(plan):
            with pytest.raises(Exception):
                FeatureStore.open(store_path)
            FeatureStore.open(store_path)  # second attempt is clean

    def test_transient_block_error_is_not_sticky(self, store_path):
        store = FeatureStore.open(store_path)
        plan = FaultPlan(
            specs=(FaultSpec("store.block_read", "error", key="shard/0000", at=(1,)),)
        )
        with activate_faults(plan):
            with pytest.raises(Exception):
                store.shard(0)
            shard = store.shard(0)  # transient: the retry succeeds
        assert shard.shape[0] > 0
        assert store.quarantined == {}


class TestStatsAndDescribe:
    def test_block_reads_counted(self, store_path):
        store = FeatureStore.open(store_path)
        assert store.stats()["block_reads"] == 0
        store.shard(0)
        store.shard(0)
        store.shard(1)
        assert store.stats()["block_reads"] == 3

    def test_describe_lists_blocks(self, store_path):
        store = FeatureStore.open(store_path)
        description = store.describe()
        names = {entry["name"] for entry in description["blocks"]}
        assert names == {"shard/0000", "shard/0001", "shard/0002", "labels"}
        assert description["fingerprint"] == store.fingerprint
        assert description["file_bytes"] == store_path.stat().st_size
