"""Store builder: one-copy ingest, epoch discipline, coarse companions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pca import PCA
from repro.datasets import FEATURE_DTYPE
from repro.datasets.gaussian import spherical_clusters
from repro.retrieval import FeatureDatabase
from repro.store import FeatureStore, build_store
from repro.store.builder import shard_bounds


@pytest.fixture
def vectors(rng):
    return rng.normal(size=(200, 6))


class TestShardBounds:
    def test_partition_covers_everything(self):
        bounds = shard_bounds(100, 3)
        assert bounds[0] == 0 and bounds[-1] == 100
        assert bounds == sorted(bounds)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)
        with pytest.raises(ValueError):
            shard_bounds(3, 5)


class TestBuild:
    def test_raw_array_round_trips(self, tmp_path, vectors):
        path = build_store(vectors, tmp_path / "a.qcs", n_shards=3)
        store = FeatureStore.open(path)
        assert store.n == 200 and store.dimension == 6 and store.n_shards == 3
        np.testing.assert_array_equal(
            store.as_array(), vectors.astype(FEATURE_DTYPE)
        )

    def test_shards_are_float32_contiguous(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "a.qcs", n_shards=2)
        store = FeatureStore.open(tmp_path / "a.qcs")
        for i in range(store.n_shards):
            shard = store.shard(i)
            assert shard.dtype == FEATURE_DTYPE
            assert shard.flags["C_CONTIGUOUS"]

    def test_feature_database_source_carries_labels(self, tmp_path, vectors):
        labels = np.repeat(np.arange(4), 50)
        database = FeatureDatabase(vectors, labels)
        build_store(database, tmp_path / "db.qcs", n_shards=2)
        store = FeatureStore.open(tmp_path / "db.qcs")
        np.testing.assert_array_equal(store.labels(), labels)

    def test_gaussian_sample_source(self, tmp_path, rng):
        sample = spherical_clusters(n_clusters=2, dim=4, n_per_cluster=30, rng=rng)
        build_store(sample, tmp_path / "g.qcs")
        store = FeatureStore.open(tmp_path / "g.qcs")
        np.testing.assert_array_equal(
            store.as_array(), np.asarray(sample.points, dtype=FEATURE_DTYPE)
        )

    def test_no_labels_block_for_raw_arrays(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "a.qcs")
        assert FeatureStore.open(tmp_path / "a.qcs").labels() is None

    def test_no_tmp_file_left_behind(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "a.qcs", n_shards=2)
        assert [p.name for p in tmp_path.iterdir()] == ["a.qcs"]


class TestEpoch:
    def test_fresh_store_is_epoch_zero(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "a.qcs")
        assert FeatureStore.open(tmp_path / "a.qcs").epoch == 0

    def test_rebuild_bumps_epoch_and_moves_fingerprint(self, tmp_path, vectors):
        path = tmp_path / "a.qcs"
        build_store(vectors, path)
        first = FeatureStore.open(path)
        build_store(vectors, path)  # identical bytes, new epoch
        second = FeatureStore.open(path)
        assert second.epoch == first.epoch + 1
        assert second.header.content_hash == first.header.content_hash
        assert second.fingerprint != first.fingerprint

    def test_pinned_epoch(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "a.qcs", epoch=9)
        assert FeatureStore.open(tmp_path / "a.qcs").epoch == 9

    def test_content_hash_moves_with_data(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "a.qcs")
        build_store(vectors + 1.0, tmp_path / "b.qcs")
        a = FeatureStore.open(tmp_path / "a.qcs")
        b = FeatureStore.open(tmp_path / "b.qcs")
        assert a.header.content_hash != b.header.content_hash


class TestCoarse:
    def test_coarse_blocks_match_pca_projection(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "c.qcs", n_shards=2, coarse_dims=3)
        store = FeatureStore.open(tmp_path / "c.qcs")
        assert store.coarse_dims == 3
        matrix = np.ascontiguousarray(vectors, dtype=FEATURE_DTYPE)
        expected = PCA(n_components=3).fit(matrix).transform(matrix)
        got = np.concatenate([store.coarse(i) for i in range(store.n_shards)])
        np.testing.assert_array_equal(got, expected.astype(FEATURE_DTYPE))
        mean, components = store.coarse_projection()
        assert mean.shape == (6,)
        assert components.shape == (3, 6)

    def test_coarse_absent_by_default(self, tmp_path, vectors):
        build_store(vectors, tmp_path / "a.qcs")
        store = FeatureStore.open(tmp_path / "a.qcs")
        assert store.coarse_dims == 0
        with pytest.raises(KeyError):
            store.coarse(0)
        with pytest.raises(KeyError):
            store.coarse_projection()

    def test_coarse_dims_bounds_checked(self, tmp_path, vectors):
        with pytest.raises(ValueError):
            build_store(vectors, tmp_path / "a.qcs", coarse_dims=7)
