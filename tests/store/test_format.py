"""Store format layer: preamble, header JSON, block table, hashing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.store import ALIGNMENT, FORMAT_VERSION, MAGIC, BlockEntry, StoreHeader
from repro.store.format import (
    StoreFormatError,
    align_up,
    block_crc,
    content_hash_of,
    pack_preamble,
    read_preamble,
)


def make_header(epoch: int = 0) -> StoreHeader:
    data = np.arange(12, dtype="<f4").reshape(6, 2).tobytes()
    entry = BlockEntry(
        name="shard/0000",
        dtype="<f4",
        shape=(6, 2),
        offset=0,
        nbytes=len(data),
        crc32=block_crc(data),
    )
    return StoreHeader(
        epoch=epoch,
        n=6,
        dimension=2,
        dtype="<f4",
        row_offsets=(0, 6),
        coarse_dims=0,
        blocks=(entry,),
        content_hash=content_hash_of([data]),
    )


class TestAlignment:
    def test_align_up(self):
        assert align_up(0) == 0
        assert align_up(1) == ALIGNMENT
        assert align_up(ALIGNMENT) == ALIGNMENT
        assert align_up(ALIGNMENT + 1) == 2 * ALIGNMENT


class TestHeaderRoundTrip:
    def test_json_round_trip(self):
        header = make_header(epoch=3)
        restored = StoreHeader.from_json(header.to_json())
        assert restored == header
        assert restored.fingerprint == header.fingerprint

    def test_fingerprint_is_content_hash_colon_epoch(self):
        header = make_header(epoch=7)
        assert header.fingerprint == f"{header.content_hash}:7"

    def test_fingerprint_moves_with_epoch(self):
        assert make_header(0).fingerprint != make_header(1).fingerprint

    def test_block_lookup(self):
        header = make_header()
        assert header.block("shard/0000").nbytes == 48
        assert header.has_block("shard/0000")
        assert not header.has_block("labels")
        with pytest.raises(KeyError):
            header.block("nope")

    def test_validate_accepts_well_formed(self):
        make_header().validate()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(StoreFormatError):
            StoreHeader.from_json(b"not json at all {")

    def test_from_json_rejects_missing_fields(self):
        with pytest.raises(StoreFormatError):
            StoreHeader.from_json(json.dumps({"epoch": 1}).encode())


class TestPreamble:
    def test_pack_read_round_trip(self):
        header = make_header()
        blob = pack_preamble(header.to_json())
        assert blob.startswith(MAGIC)
        assert len(blob) % ALIGNMENT == 0
        restored, data_start = read_preamble(blob + b"\x00" * 16)
        assert restored == header
        assert data_start == len(blob)

    def test_bad_magic_rejected(self):
        blob = bytearray(pack_preamble(make_header().to_json()))
        blob[0] ^= 0xFF
        with pytest.raises(StoreFormatError):
            read_preamble(bytes(blob))

    def test_truncated_header_rejected(self):
        blob = pack_preamble(make_header().to_json())
        with pytest.raises(StoreFormatError):
            read_preamble(blob[: len(blob) // 2])

    def test_version_recorded(self):
        blob = pack_preamble(make_header().to_json())
        # Preamble layout: magic(8) | version(u32) | header_len(u32).
        version = int.from_bytes(blob[8:12], "little")
        assert version == FORMAT_VERSION


class TestContentHash:
    def test_deterministic_and_order_sensitive(self):
        a, b = b"alpha-block", b"beta-block"
        assert content_hash_of([a, b]) == content_hash_of([a, b])
        assert content_hash_of([a, b]) != content_hash_of([b, a])

    def test_sensitive_to_single_bit(self):
        data = np.zeros(64, dtype="<f4").tobytes()
        flipped = bytearray(data)
        flipped[17] ^= 0x01
        assert content_hash_of([data]) != content_hash_of([bytes(flipped)])

    def test_crc_detects_flip(self):
        data = b"0123456789" * 10
        damaged = bytearray(data)
        damaged[5] ^= 0x40
        assert block_crc(data) != block_crc(bytes(damaged))
