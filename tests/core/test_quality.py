"""Clustering-quality measures (paper Section 4.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import BayesianClassifier
from repro.core.cluster import Cluster
from repro.core.quality import (
    labelled_classification_error,
    leave_one_out_error,
)


class TestLeaveOneOut:
    def test_well_separated_clusters_have_zero_error(self, rng):
        clusters = [
            Cluster(rng.standard_normal((25, 3))),
            Cluster(rng.standard_normal((25, 3)) + 15.0),
        ]
        report = leave_one_out_error(clusters)
        assert report.total == 50
        assert report.error_rate == 0.0
        assert report.skipped_singletons == 0

    def test_interleaved_clusters_have_errors(self, rng):
        # Two clusters drawn from the same population: membership is
        # arbitrary, so leave-one-out must misplace many points.
        shared = rng.standard_normal((40, 3))
        clusters = [Cluster(shared[:20]), Cluster(shared[20:])]
        report = leave_one_out_error(clusters)
        assert report.error_rate > 0.2

    def test_singletons_are_skipped(self, rng):
        clusters = [
            Cluster(rng.standard_normal((10, 2))),
            Cluster(np.array([[50.0, 50.0]])),
        ]
        report = leave_one_out_error(clusters)
        assert report.skipped_singletons == 1
        assert report.total == 10

    def test_empty_evaluation_reports_zero(self):
        clusters = [Cluster(np.array([[0.0, 0.0]]))]
        report = leave_one_out_error(clusters)
        assert report.total == 0
        assert report.error_rate == 0.0


class TestLabelledError:
    def test_perfect_separation(self, rng):
        train_a = rng.standard_normal((30, 3))
        train_b = rng.standard_normal((30, 3)) + 12.0
        clusters = [Cluster(train_a), Cluster(train_b)]
        test_points = np.vstack(
            [rng.standard_normal((20, 3)), rng.standard_normal((20, 3)) + 12.0]
        )
        labels = [0] * 20 + [1] * 20
        error = labelled_classification_error(test_points, labels, clusters, [0, 1])
        assert error == 0.0

    def test_overlapping_clusters_err(self, rng):
        train_a = rng.standard_normal((30, 3))
        train_b = rng.standard_normal((30, 3)) + 0.5
        clusters = [Cluster(train_a), Cluster(train_b)]
        test_points = np.vstack(
            [rng.standard_normal((50, 3)), rng.standard_normal((50, 3)) + 0.5]
        )
        labels = [0] * 50 + [1] * 50
        error = labelled_classification_error(test_points, labels, clusters, [0, 1])
        assert 0.1 < error < 0.8

    def test_error_decreases_with_separation(self, rng):
        errors = []
        for separation in (0.5, 1.5, 3.0, 6.0):
            train_a = rng.standard_normal((30, 4))
            train_b = rng.standard_normal((30, 4)) + separation
            clusters = [Cluster(train_a), Cluster(train_b)]
            test = np.vstack(
                [rng.standard_normal((50, 4)), rng.standard_normal((50, 4)) + separation]
            )
            labels = [0] * 50 + [1] * 50
            errors.append(
                labelled_classification_error(test, labels, clusters, [0, 1])
            )
        # Not necessarily strictly monotone on one draw, but the ends must
        # order correctly and by a wide margin.
        assert errors[-1] < errors[0]
        assert errors[-1] <= 0.05

    def test_count_outliers_option(self, rng):
        clusters = [Cluster(rng.standard_normal((30, 2)))]
        far_point = np.full((1, 2), 50.0)
        lenient = labelled_classification_error(far_point, [0], clusters, [0])
        strict = labelled_classification_error(
            far_point, [0], clusters, [0], count_outliers_as_errors=True
        )
        assert lenient == 0.0
        assert strict == 1.0

    def test_validation(self, rng):
        clusters = [Cluster(rng.standard_normal((5, 2)))]
        with pytest.raises(ValueError):
            labelled_classification_error(rng.standard_normal((3, 2)), [0], clusters, [0])
        with pytest.raises(ValueError):
            labelled_classification_error(
                rng.standard_normal((3, 2)), [0, 0, 0], clusters, [0, 1]
            )

    def test_custom_classifier_is_used(self, rng):
        clusters = [
            Cluster(rng.standard_normal((20, 2))),
            Cluster(rng.standard_normal((20, 2)) + 10.0),
        ]
        strict_classifier = BayesianClassifier(significance_level=0.5)
        error = labelled_classification_error(
            np.zeros((1, 2)), [0], clusters, [0, 1], classifier=strict_classifier
        )
        assert error == 0.0
