"""Compiled distance kernels: equivalence with the naive quadratic form.

The kernel layer (`repro.core.kernels`) must be a pure optimization:
for every query — diagonal scheme, inverse scheme, mixed, single-point,
PCA-reduced — the compiled evaluators must reproduce
``quadratic_distance_many`` to tight tolerance and produce *identical*
rankings, or the paper's quality figures would silently change with the
speedup.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.covariance import DiagonalScheme, InverseScheme, get_scheme
from repro.core.distance import DisjunctiveQuery, QueryPoint, quadratic_distance_many
from repro.core.kernels import (
    CholeskyKernel,
    CompiledQuery,
    DiagonalKernel,
    KernelCache,
    MatmulKernel,
    compile_query,
    default_kernel_cache,
    ensure_compiled,
    fingerprint_cluster_state,
    kernels_enabled,
    use_kernels,
)
from repro.core.pca import PCA

RTOL = 1e-9
ATOL = 1e-12


def random_query(
    rng: np.random.Generator,
    scheme_name: str,
    g: int,
    p: int,
    spread: float = 4.0,
) -> DisjunctiveQuery:
    """A g-point query with covariances estimated from random clouds."""
    scheme = get_scheme(scheme_name)
    points = []
    for _ in range(g):
        center = spread * rng.standard_normal(p)
        cloud = center + rng.standard_normal((max(p + 2, 8), p))
        covariance = np.cov(cloud, rowvar=False)
        info = scheme.invert(covariance)
        points.append(
            QueryPoint(
                center=cloud.mean(axis=0),
                inverse=info.inverse,
                weight=float(rng.uniform(0.5, 3.0)),
                diagonal=info.diagonal,
            )
        )
    return DisjunctiveQuery(points)


def naive_per_cluster(query, database: np.ndarray) -> np.ndarray:
    return np.stack(
        [
            quadratic_distance_many(database, qp.center, qp.inverse)
            for qp in query.points
        ]
    )


class TestKernelSelection:
    def test_diagonal_inverse_compiles_to_diagonal_kernel(self):
        rng = np.random.default_rng(0)
        query = random_query(rng, "diagonal", g=3, p=6)
        compiled = compile_query(query)
        assert all(isinstance(k, DiagonalKernel) for k in compiled.kernels)

    def test_full_inverse_compiles_to_cholesky_kernel(self):
        rng = np.random.default_rng(1)
        query = random_query(rng, "inverse", g=3, p=6)
        compiled = compile_query(query)
        assert all(isinstance(k, CholeskyKernel) for k in compiled.kernels)

    def test_diagonal_detected_without_explicit_hint(self):
        """A dense np.diag matrix (baseline style) still takes the fast path."""
        query = DisjunctiveQuery(
            [QueryPoint(center=np.zeros(4), inverse=np.diag([1.0, 2.0, 3.0, 4.0]), weight=1.0)]
        )
        compiled = compile_query(query)
        assert isinstance(compiled.kernels[0], DiagonalKernel)

    def test_indefinite_matrix_falls_back_to_matmul_kernel(self):
        indefinite = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        query = DisjunctiveQuery(
            [QueryPoint(center=np.zeros(2), inverse=indefinite, weight=1.0)]
        )
        compiled = compile_query(query)
        assert isinstance(compiled.kernels[0], MatmulKernel)
        db = np.random.default_rng(2).standard_normal((50, 2))
        np.testing.assert_allclose(
            compiled.per_cluster_distances(db),
            naive_per_cluster(query, db),
            rtol=RTOL,
            atol=ATOL,
        )


class TestEquivalence:
    @pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
    @pytest.mark.parametrize("g,p", [(1, 3), (2, 8), (5, 16), (3, 33)])
    def test_per_cluster_matches_naive(self, scheme, g, p):
        rng = np.random.default_rng(1000 * g + p + (scheme == "inverse"))
        query = random_query(rng, scheme, g=g, p=p)
        database = 4.0 * rng.standard_normal((257, p))
        np.testing.assert_allclose(
            compile_query(query).per_cluster_distances(database),
            naive_per_cluster(query, database),
            rtol=RTOL,
            atol=ATOL,
        )

    @pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
    def test_aggregate_distances_and_ranking_match_naive(self, scheme):
        rng = np.random.default_rng(42)
        query = random_query(rng, scheme, g=4, p=12)
        database = 4.0 * rng.standard_normal((500, 12))
        kernel_distances = query.distances(database)
        with use_kernels(False):
            naive_distances = query.distances(database)
        np.testing.assert_allclose(kernel_distances, naive_distances, rtol=RTOL, atol=ATOL)
        np.testing.assert_array_equal(
            np.argsort(kernel_distances, kind="stable"),
            np.argsort(naive_distances, kind="stable"),
        )

    def test_mixed_diagonal_and_full_query(self):
        rng = np.random.default_rng(3)
        diag_part = random_query(rng, "diagonal", g=2, p=5)
        full_part = random_query(rng, "inverse", g=2, p=5)
        query = DisjunctiveQuery(diag_part.points + full_part.points)
        database = rng.standard_normal((200, 5))
        np.testing.assert_allclose(
            compile_query(query).per_cluster_distances(database),
            naive_per_cluster(query, database),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_database_row_at_centroid_ranks_first(self):
        """Whitening cancellation must not displace an exact match."""
        rng = np.random.default_rng(4)
        query = random_query(rng, "inverse", g=3, p=8)
        database = 4.0 * rng.standard_normal((100, 8))
        database[17] = query.points[1].center
        distances = query.distances(database)
        assert int(np.argmin(distances)) == 17

    def test_subset_evaluation_matches_full_scan_rows(self):
        """Tree leaves see row subsets; values must match the full scan."""
        rng = np.random.default_rng(5)
        query = random_query(rng, "diagonal", g=3, p=7)
        database = rng.standard_normal((300, 7))
        full = query.distances(database)
        subset = rng.choice(300, size=40, replace=False)
        np.testing.assert_array_equal(query.distances(database[subset]), full[subset])

    @given(seed=hst.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_kernel_equals_naive_both_schemes(self, seed):
        """Seeded property test: random geometry, both schemes, ≤1e-9."""
        rng = np.random.default_rng(seed)
        g = int(rng.integers(1, 6))
        p = int(rng.integers(2, 24))
        database = 4.0 * rng.standard_normal((64, p))
        for scheme in ("diagonal", "inverse"):
            query = random_query(rng, scheme, g=g, p=p)
            kernel = compile_query(query).per_cluster_distances(database)
            naive = naive_per_cluster(query, database)
            np.testing.assert_allclose(kernel, naive, rtol=RTOL, atol=ATOL)
            np.testing.assert_array_equal(
                np.argsort(kernel[0], kind="stable"),
                np.argsort(naive[0], kind="stable"),
            )


class TestPCAReducedBasis:
    """Theorem 1: quadratic forms survive the principal-component basis."""

    def test_kernel_matches_naive_in_reduced_basis(self):
        rng = np.random.default_rng(6)
        raw = rng.standard_normal((400, 10)) @ rng.standard_normal((10, 10))
        pca = PCA(n_components=10).fit(raw)
        reduced = pca.transform(raw)
        relevant = reduced[rng.choice(400, size=30, replace=False)]
        scheme = InverseScheme()
        info = scheme.invert(np.cov(relevant, rowvar=False))
        query = DisjunctiveQuery(
            [QueryPoint(center=relevant.mean(axis=0), inverse=info.inverse, weight=1.0)]
        )
        np.testing.assert_allclose(
            compile_query(query).per_cluster_distances(reduced),
            naive_per_cluster(query, reduced),
            rtol=RTOL,
            atol=ATOL,
        )

    def test_distance_invariance_under_rotation(self):
        """d^2 computed via kernels is invariant under the PC rotation."""
        rng = np.random.default_rng(7)
        raw = rng.standard_normal((300, 8)) @ rng.standard_normal((8, 8))
        pca = PCA(n_components=8).fit(raw)
        reduced = pca.transform(raw)
        picks = rng.choice(300, size=25, replace=False)
        scheme = InverseScheme(regularization=0.0)

        raw_info = scheme.invert(np.cov(raw[picks], rowvar=False))
        raw_query = DisjunctiveQuery(
            [QueryPoint(center=raw[picks].mean(axis=0), inverse=raw_info.inverse, weight=1.0)]
        )
        red_info = scheme.invert(np.cov(reduced[picks], rowvar=False))
        red_query = DisjunctiveQuery(
            [
                QueryPoint(
                    center=reduced[picks].mean(axis=0),
                    inverse=red_info.inverse,
                    weight=1.0,
                )
            ]
        )
        np.testing.assert_allclose(
            raw_query.distances(raw), red_query.distances(reduced), rtol=1e-7, atol=1e-9
        )


class TestCachingContract:
    def test_fingerprint_stable_and_sensitive(self):
        rng = np.random.default_rng(8)
        a = random_query(rng, "diagonal", g=2, p=4)
        b = DisjunctiveQuery(list(a.points))
        assert fingerprint_cluster_state(a) == fingerprint_cluster_state(b)
        nudged = DisjunctiveQuery(
            [a.points[0]]
            + [
                QueryPoint(
                    center=a.points[1].center + 1e-12,
                    inverse=a.points[1].inverse,
                    weight=a.points[1].weight,
                )
            ]
        )
        assert fingerprint_cluster_state(a) != fingerprint_cluster_state(nudged)

    def test_memoized_fingerprint_matches_fresh_hash(self):
        rng = np.random.default_rng(12)
        query = random_query(rng, "inverse", g=2, p=5)
        fresh = fingerprint_cluster_state(query)
        ensure_compiled(query)  # installs the memo
        assert fingerprint_cluster_state(query) == fresh

    def test_same_state_shares_one_compiled_kernel(self):
        rng = np.random.default_rng(9)
        a = random_query(rng, "inverse", g=3, p=6)
        b = DisjunctiveQuery(list(a.points))
        cache = KernelCache(capacity=8)
        compiled_a = ensure_compiled(a, cache=cache)
        compiled_b = ensure_compiled(b, cache=cache)
        assert compiled_a is compiled_b
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_memoization_skips_cache_on_repeat(self):
        rng = np.random.default_rng(10)
        query = random_query(rng, "diagonal", g=2, p=4)
        cache = KernelCache(capacity=8)
        first = ensure_compiled(query, cache=cache)
        second = ensure_compiled(query, cache=cache)
        assert first is second
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 0  # memo answered, not the cache

    def test_lru_eviction_bounds_residency(self):
        rng = np.random.default_rng(11)
        cache = KernelCache(capacity=2)
        for _ in range(5):
            ensure_compiled(random_query(rng, "diagonal", g=1, p=3), cache=cache)
        assert len(cache) == 2

    def test_zero_capacity_disables_caching(self):
        rng = np.random.default_rng(13)
        cache = KernelCache(capacity=0)
        query = random_query(rng, "diagonal", g=1, p=3)
        ensure_compiled(query, cache=cache)
        assert len(cache) == 0

    def test_on_event_reports_hits_and_misses(self):
        rng = np.random.default_rng(14)
        events = []
        cache = KernelCache(capacity=8)
        query = random_query(rng, "inverse", g=2, p=4)
        ensure_compiled(query, cache=cache, on_event=events.append)
        ensure_compiled(query, cache=cache, on_event=events.append)
        twin = DisjunctiveQuery(list(query.points))
        ensure_compiled(twin, cache=cache, on_event=events.append)
        assert events == ["misses", "hits", "hits"]

    def test_default_cache_is_shared_and_usable(self):
        cache = default_kernel_cache()
        assert cache is default_kernel_cache()
        rng = np.random.default_rng(15)
        query = random_query(rng, "diagonal", g=1, p=3)
        assert ensure_compiled(query) is ensure_compiled(query)

    def test_use_kernels_toggle_restores_state(self):
        assert kernels_enabled()
        with use_kernels(False):
            assert not kernels_enabled()
            rng = np.random.default_rng(16)
            query = random_query(rng, "diagonal", g=2, p=4)
            database = rng.standard_normal((50, 4))
            np.testing.assert_array_equal(
                query.per_cluster_distances(database),
                naive_per_cluster(query, database),
            )
        assert kernels_enabled()


class TestValidation:
    def test_empty_kernel_list_rejected(self):
        with pytest.raises(ValueError, match="at least one kernel"):
            CompiledQuery([], fingerprint="deadbeef")

    def test_dimension_mismatch_rejected(self):
        rng = np.random.default_rng(17)
        query = random_query(rng, "diagonal", g=1, p=4)
        with pytest.raises(ValueError, match="dimension"):
            compile_query(query).per_cluster_distances(np.zeros((3, 5)))

    def test_negative_cache_capacity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            KernelCache(capacity=-1)

    def test_bound_infos_match_tree_expectations(self):
        """Diagonal points expose the exact per-axis bound; full points
        expose a non-negative smallest eigenvalue."""
        rng = np.random.default_rng(18)
        diag_query = random_query(rng, "diagonal", g=2, p=5)
        for (center, diagonal, lam), qp in zip(
            compile_query(diag_query).bound_infos(), diag_query.points
        ):
            np.testing.assert_array_equal(diagonal, np.diag(qp.inverse))
            assert lam == 0.0
        full_query = random_query(rng, "inverse", g=2, p=5)
        for (center, diagonal, lam), qp in zip(
            compile_query(full_query).bound_infos(), full_query.points
        ):
            assert diagonal is None
            smallest = float(np.linalg.eigvalsh(np.asarray(qp.inverse)).min())
            assert lam == pytest.approx(max(smallest, 0.0))
