"""Bayesian classifier (Algorithm 2): allocation, radius check, invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import BayesianClassifier
from repro.core.cluster import Cluster
from repro.core.covariance import DiagonalScheme, InverseScheme


def make_two_clusters(rng, separation=8.0, size=25, dim=3):
    a = Cluster(rng.standard_normal((size, dim)))
    b = Cluster(rng.standard_normal((size, dim)) + separation)
    return [a, b]


class TestPrepare:
    def test_state_shapes(self, rng):
        clusters = make_two_clusters(rng)
        state = BayesianClassifier().prepare(clusters)
        assert state.centroids.shape == (2, 3)
        assert state.pooled_inverse.shape == (3, 3)
        assert state.log_priors.shape == (2,)
        assert len(state.cluster_inverses) == 2
        assert state.radius > 0

    def test_priors_are_normalized_masses(self, rng):
        a = Cluster(rng.standard_normal((10, 2)), scores=np.full(10, 3.0))
        b = Cluster(rng.standard_normal((10, 2)))
        state = BayesianClassifier().prepare([a, b])
        np.testing.assert_allclose(np.exp(state.log_priors), [0.75, 0.25])

    def test_rejects_empty_and_mismatched(self, rng):
        classifier = BayesianClassifier()
        with pytest.raises(ValueError):
            classifier.prepare([])
        with pytest.raises(ValueError):
            classifier.prepare(
                [Cluster(rng.standard_normal((3, 2))), Cluster(rng.standard_normal((3, 3)))]
            )

    def test_rejects_bad_significance(self):
        with pytest.raises(ValueError):
            BayesianClassifier(significance_level=0.0)


class TestClassify:
    def test_assigns_to_nearest_cluster(self, rng):
        clusters = make_two_clusters(rng)
        classifier = BayesianClassifier()
        state = classifier.prepare(clusters)
        near_a = classifier.classify(state, np.zeros(3) + 0.1)
        near_b = classifier.classify(state, np.full(3, 8.0) + 0.1)
        assert near_a.cluster_index == 0
        assert near_b.cluster_index == 1
        assert not near_a.is_outlier
        assert not near_b.is_outlier

    def test_far_point_is_outlier(self, rng):
        clusters = make_two_clusters(rng)
        classifier = BayesianClassifier()
        state = classifier.prepare(clusters)
        decision = classifier.classify(state, np.full(3, 100.0))
        assert decision.is_outlier
        assert decision.assigned_index is None

    def test_prior_breaks_ties(self, rng):
        # Two overlapping clusters of different masses: the midpoint goes
        # to the heavier one (Equation 8's prior term).
        points = rng.standard_normal((30, 2))
        heavy = Cluster(points, scores=np.full(30, 5.0))
        light = Cluster(points + 4.0)
        classifier = BayesianClassifier()
        state = classifier.prepare([heavy, light])
        midpoint = np.full(2, 2.0)
        decision = classifier.classify(state, midpoint)
        assert decision.cluster_index == 0

    def test_discriminants_equation_10(self, rng):
        clusters = make_two_clusters(rng)
        classifier = BayesianClassifier(scheme=InverseScheme())
        state = classifier.prepare(clusters)
        x = rng.standard_normal(3)
        scores = classifier.discriminants(state, x)
        for i, cluster in enumerate(clusters):
            diff = x - cluster.centroid
            expected = -0.5 * diff @ state.pooled_inverse @ diff + state.log_priors[i]
            assert scores[i] == pytest.approx(expected)

    def test_classify_points_batch(self, rng):
        clusters = make_two_clusters(rng)
        classifier = BayesianClassifier()
        decisions = classifier.classify_points(clusters, rng.standard_normal((5, 3)))
        assert len(decisions) == 5


class TestAssign:
    def test_inlier_joins_cluster(self, rng):
        clusters = make_two_clusters(rng)
        size_before = clusters[0].size
        index = BayesianClassifier().assign(clusters, np.zeros(3))
        assert index == 0
        assert clusters[0].size == size_before + 1
        assert len(clusters) == 2

    def test_outlier_creates_cluster(self, rng):
        clusters = make_two_clusters(rng)
        index = BayesianClassifier().assign(clusters, np.full(3, 100.0), score=2.0)
        assert index == 2
        assert len(clusters) == 3
        assert clusters[2].size == 1
        assert clusters[2].weight == pytest.approx(2.0)


class TestInvariance:
    def test_theorem_1_linear_invariance(self, rng):
        """Classification decisions are unchanged under invertible maps.

        Theorem 1 holds exactly for the full-inverse scheme (the diagonal
        approximation is axis-dependent by construction).
        """
        clusters = make_two_clusters(rng, separation=4.0)
        test_points = np.vstack(
            [rng.standard_normal((10, 3)), rng.standard_normal((10, 3)) + 4.0]
        )
        transform = rng.standard_normal((3, 3)) + 3.0 * np.eye(3)
        classifier = BayesianClassifier(scheme=InverseScheme(regularization=1e-10))

        original_state = classifier.prepare(clusters)
        transformed_clusters = [
            Cluster(c.points @ transform.T, c.scores) for c in clusters
        ]
        transformed_state = classifier.prepare(transformed_clusters)

        for point in test_points:
            original = classifier.classify(original_state, point)
            transformed = classifier.classify(transformed_state, transform @ point)
            assert original.cluster_index == transformed.cluster_index
            assert original.radius_distance == pytest.approx(
                transformed.radius_distance, rel=1e-5
            )

    def test_quadratic_discriminant_separates_by_shape(self, rng):
        """QDA mode: concentric clusters of different spread are
        separable by shape, which the pooled (linear) discriminant
        fundamentally cannot do."""
        tight = Cluster(rng.normal(0.0, 0.3, (60, 2)))
        wide = Cluster(rng.normal(0.0, 4.0, (60, 2)))
        qda = BayesianClassifier(
            scheme=InverseScheme(), discriminant="quadratic", significance_level=0.001
        )
        state = qda.prepare([tight, wide])
        near_center = qda.classify(state, np.array([0.1, -0.1]))
        far_out = qda.classify(state, np.array([6.0, -5.0]))
        assert near_center.cluster_index == 0  # tight cluster explains it best
        assert far_out.cluster_index == 1      # only the wide cluster can

    def test_quadratic_matches_pooled_for_identical_shapes(self, rng):
        """With equal covariances QDA and the pooled form agree."""
        clusters = make_two_clusters(rng, separation=6.0)
        probes = np.vstack(
            [rng.standard_normal((15, 3)), rng.standard_normal((15, 3)) + 6.0]
        )
        pooled = BayesianClassifier(scheme=InverseScheme())
        quadratic = BayesianClassifier(scheme=InverseScheme(), discriminant="quadratic")
        pooled_state = pooled.prepare(clusters)
        quadratic_state = quadratic.prepare(clusters)
        agreement = np.mean(
            [
                pooled.classify(pooled_state, p).cluster_index
                == quadratic.classify(quadratic_state, p).cluster_index
                for p in probes
            ]
        )
        assert agreement > 0.95

    def test_discriminant_validation(self):
        with pytest.raises(ValueError):
            BayesianClassifier(discriminant="cubic")

    def test_diagonal_scheme_quality_close_to_inverse(self, rng):
        """Section 4's claim: diagonal performance ~ inverse performance."""
        clusters = make_two_clusters(rng, separation=6.0)
        points = np.vstack(
            [rng.standard_normal((50, 3)), rng.standard_normal((50, 3)) + 6.0]
        )
        labels = np.array([0] * 50 + [1] * 50)
        agreement = {}
        for scheme in (DiagonalScheme(), InverseScheme()):
            classifier = BayesianClassifier(scheme=scheme)
            state = classifier.prepare(clusters)
            predicted = [classifier.classify(state, p).cluster_index for p in points]
            agreement[scheme.name] = float(np.mean(np.asarray(predicted) == labels))
        assert agreement["diagonal"] > 0.95
        assert abs(agreement["diagonal"] - agreement["inverse"]) < 0.05
