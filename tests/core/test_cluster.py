"""Cluster model: Definitions 1-2 and the merge formulas (Eq. 11-13)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst
from hypothesis.extra.numpy import arrays

from repro.core.cluster import Cluster, merge_moments


class TestConstruction:
    def test_single_point_cluster(self):
        cluster = Cluster(np.array([[1.0, 2.0]]))
        assert cluster.size == 1
        assert cluster.dimension == 2
        assert cluster.weight == 1.0
        np.testing.assert_array_equal(cluster.centroid, [1.0, 2.0])
        np.testing.assert_array_equal(cluster.scatter, np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Cluster(np.empty((0, 3)))

    def test_rejects_bad_scores(self):
        with pytest.raises(ValueError):
            Cluster(np.ones((2, 2)), [1.0, -1.0])

    def test_views_are_read_only(self):
        cluster = Cluster(np.ones((2, 2)))
        with pytest.raises(ValueError):
            cluster.points[0, 0] = 5.0
        with pytest.raises(ValueError):
            cluster.scores[0] = 5.0


class TestStatistics:
    def test_weighted_centroid(self):
        cluster = Cluster(np.array([[0.0], [10.0]]), [1.0, 4.0])
        assert cluster.centroid[0] == pytest.approx(8.0)
        assert cluster.weight == pytest.approx(5.0)

    def test_scatter_matches_definition(self, rng):
        points = rng.standard_normal((8, 3))
        scores = rng.uniform(0.5, 2.0, 8)
        cluster = Cluster(points, scores)
        center = (scores[:, None] * points).sum(axis=0) / scores.sum()
        expected = sum(s * np.outer(x - center, x - center) for s, x in zip(scores, points))
        np.testing.assert_allclose(cluster.scatter, expected)
        np.testing.assert_allclose(cluster.covariance, expected / scores.sum())

    def test_len_matches_size(self):
        cluster = Cluster(np.ones((5, 2)))
        assert len(cluster) == 5


class TestMutation:
    def test_add_updates_statistics(self):
        cluster = Cluster(np.array([[0.0, 0.0]]))
        cluster.add([2.0, 2.0])
        assert cluster.size == 2
        np.testing.assert_allclose(cluster.centroid, [1.0, 1.0])

    def test_add_with_score(self):
        cluster = Cluster(np.array([[0.0]]))
        cluster.add([3.0], score=3.0)
        assert cluster.centroid[0] == pytest.approx(2.25)

    def test_add_rejects_bad_input(self):
        cluster = Cluster(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            cluster.add([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            cluster.add([1.0, 2.0], score=0.0)

    def test_without_member(self):
        cluster = Cluster(np.array([[0.0], [1.0], [2.0]]))
        reduced = cluster.without_member(1)
        assert reduced.size == 2
        np.testing.assert_allclose(reduced.points.ravel(), [0.0, 2.0])
        # Original untouched.
        assert cluster.size == 3

    def test_without_member_rejects_singleton(self):
        with pytest.raises(ValueError):
            Cluster(np.array([[1.0]])).without_member(0)


class TestMerging:
    def test_merged_with_concatenates(self, rng):
        a = Cluster(rng.standard_normal((4, 2)))
        b = Cluster(rng.standard_normal((6, 2)))
        merged = a.merged_with(b)
        assert merged.size == 10
        assert merged.weight == pytest.approx(10.0)

    def test_merged_with_rejects_dimension_mismatch(self, rng):
        a = Cluster(rng.standard_normal((3, 2)))
        b = Cluster(rng.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            a.merged_with(b)

    def test_merge_moments_mean_equation_12(self):
        _, mean, _ = merge_moments(
            np.array([0.0]), np.zeros((1, 1)), 2.0, np.array([3.0]), np.zeros((1, 1)), 4.0
        )
        assert mean[0] == pytest.approx(2.0)

    def test_merge_moments_matches_pooled_recompute(self, rng):
        """Equations 11-13 must agree with recomputing from raw points."""
        points_a = rng.standard_normal((12, 3))
        points_b = rng.standard_normal((9, 3)) + 2.0
        all_points = np.vstack([points_a, points_b])

        def sample_cov(points):
            centered = points - points.mean(axis=0)
            return centered.T @ centered / (points.shape[0] - 1)

        weight, mean, covariance = merge_moments(
            points_a.mean(axis=0),
            sample_cov(points_a),
            float(points_a.shape[0]),
            points_b.mean(axis=0),
            sample_cov(points_b),
            float(points_b.shape[0]),
        )
        assert weight == pytest.approx(21.0)
        np.testing.assert_allclose(mean, all_points.mean(axis=0))
        np.testing.assert_allclose(covariance, sample_cov(all_points), rtol=1e-10)

    @given(
        arrays(np.float64, (5, 2), elements=hst.floats(-50, 50)),
        arrays(np.float64, (7, 2), elements=hst.floats(-50, 50)),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_moments_property(self, points_a, points_b):
        """Property form of the same invariant over arbitrary data."""
        all_points = np.vstack([points_a, points_b])

        def sample_cov(points):
            centered = points - points.mean(axis=0)
            return centered.T @ centered / (points.shape[0] - 1)

        _, mean, covariance = merge_moments(
            points_a.mean(axis=0), sample_cov(points_a), 5.0,
            points_b.mean(axis=0), sample_cov(points_b), 7.0,
        )
        np.testing.assert_allclose(mean, all_points.mean(axis=0), atol=1e-8)
        np.testing.assert_allclose(covariance, sample_cov(all_points), atol=1e-7)

    def test_merge_moments_rejects_tiny_weights(self):
        with pytest.raises(ValueError):
            merge_moments(np.zeros(1), np.zeros((1, 1)), 0.5, np.zeros(1), np.zeros((1, 1)), 0.4)
        with pytest.raises(ValueError):
            merge_moments(np.zeros(1), np.zeros((1, 1)), -1.0, np.zeros(1), np.zeros((1, 1)), 2.0)
