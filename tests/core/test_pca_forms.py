"""The d^2 and d̂ diagonal forms in the PC basis (Section 4.4.3 remark)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pca import discriminant_in_pc_basis, distance_in_pc_basis


class TestDistanceInPCBasis:
    def test_equals_full_quadratic_form(self, rng):
        """In the eigenbasis of S, (x-c)' S^-1 (x-c) = sum((z-zc)^2/lambda)."""
        raw = rng.standard_normal((40, 4))
        covariance = raw.T @ raw / 40.0 + 0.1 * np.eye(4)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        x = rng.standard_normal(4)
        center = rng.standard_normal(4)
        full = (x - center) @ np.linalg.inv(covariance) @ (x - center)
        in_pc = distance_in_pc_basis(
            eigenvectors.T @ x, eigenvectors.T @ center, eigenvalues
        )
        assert in_pc == pytest.approx(float(full), rel=1e-9)

    def test_zero_at_center(self):
        z = np.array([1.0, 2.0])
        assert distance_in_pc_basis(z, z, np.ones(2)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            distance_in_pc_basis(np.zeros(2), np.zeros(3), np.ones(2))
        with pytest.raises(ValueError):
            distance_in_pc_basis(np.zeros(2), np.zeros(2), np.array([1.0, 0.0]))


class TestDiscriminantInPCBasis:
    def test_equation_10_form(self, rng):
        z_x = rng.standard_normal(3)
        z_c = rng.standard_normal(3)
        eigenvalues = rng.uniform(0.5, 2.0, 3)
        log_prior = -0.7
        expected = -0.5 * distance_in_pc_basis(z_x, z_c, eigenvalues) + log_prior
        assert discriminant_in_pc_basis(z_x, z_c, eigenvalues, log_prior) == pytest.approx(
            expected
        )

    def test_prior_orders_ties(self):
        z = np.zeros(2)
        heavy = discriminant_in_pc_basis(z, z, np.ones(2), np.log(0.8))
        light = discriminant_in_pc_basis(z, z, np.ones(2), np.log(0.2))
        assert heavy > light
