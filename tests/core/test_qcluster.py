"""QclusterEngine: the full Algorithm 1 loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QclusterConfig
from repro.core.distance import DisjunctiveQuery
from repro.core.qcluster import QclusterEngine


def bimodal_relevant_set(rng, n=20, dim=4, separation=10.0):
    half = n // 2
    a = rng.normal(0.0, 0.4, (half, dim))
    b = rng.normal(0.0, 0.4, (n - half, dim)) + separation
    return np.vstack([a, b])


class TestConfig:
    def test_defaults_follow_paper(self):
        config = QclusterConfig()
        assert config.scheme == "diagonal"
        assert config.significance_level == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            QclusterConfig(significance_level=0.0)
        with pytest.raises(ValueError):
            QclusterConfig(max_clusters=0)
        with pytest.raises(ValueError):
            QclusterConfig(alpha_relax_factor=1.5)
        with pytest.raises(ValueError):
            QclusterConfig(min_merge_alpha=0.5)
        with pytest.raises(ValueError):
            QclusterConfig(scheme="banana")
        with pytest.raises(ValueError):
            QclusterConfig(initial_clusters=0)

    def test_scheme_instance(self):
        assert QclusterConfig(scheme="inverse").covariance_scheme.name == "inverse"


class TestStart:
    def test_initial_query_is_euclidean(self, rng):
        engine = QclusterEngine()
        point = rng.standard_normal(3)
        query = engine.start(point)
        assert isinstance(query, DisjunctiveQuery)
        assert query.size == 1
        np.testing.assert_array_equal(query.points[0].inverse, np.eye(3))
        assert engine.iteration == 0
        assert engine.n_clusters == 0

    def test_start_resets_state(self, rng):
        engine = QclusterEngine()
        engine.start(rng.standard_normal(3))
        engine.feedback(bimodal_relevant_set(rng, dim=3))
        assert engine.n_clusters > 0
        engine.start(rng.standard_normal(3))
        assert engine.n_clusters == 0
        assert engine.iteration == 0

    def test_rejects_matrix_query(self, rng):
        with pytest.raises(ValueError):
            QclusterEngine().start(rng.standard_normal((2, 3)))


class TestFeedback:
    def test_bimodal_set_yields_two_clusters(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(4))
        query = engine.feedback(bimodal_relevant_set(rng))
        assert engine.n_clusters == 2
        assert query.size == 2

    def test_unimodal_set_yields_one_cluster(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(4))
        engine.feedback(rng.normal(0.0, 0.5, (20, 4)))
        assert engine.n_clusters == 1

    def test_weights_accumulate_relevance_scores(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        points = rng.normal(0.0, 0.3, (10, 3))
        engine.feedback(points, scores=np.full(10, 2.0))
        assert engine.total_relevance_mass == pytest.approx(20.0)

    def test_deduplication_skips_repeats(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        points = rng.normal(0.0, 0.3, (10, 3))
        engine.feedback(points)
        mass_before = engine.total_relevance_mass
        engine.feedback(points)  # identical points again
        assert engine.total_relevance_mass == pytest.approx(mass_before)

    def test_dedup_can_be_disabled(self, rng):
        engine = QclusterEngine(QclusterConfig(deduplicate=False))
        engine.start(np.zeros(3))
        points = rng.normal(0.0, 0.3, (10, 3))
        engine.feedback(points)
        engine.feedback(points)
        assert engine.total_relevance_mass == pytest.approx(20.0)

    def test_second_round_uses_adaptive_classification(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(4))
        engine.feedback(rng.normal(0.0, 0.4, (15, 4)))
        assert engine.n_clusters == 1
        # A far-away batch must open a new cluster via the radius check.
        engine.feedback(rng.normal(0.0, 0.4, (15, 4)) + 20.0)
        assert engine.n_clusters == 2

    def test_empty_feedback_keeps_query(self, rng):
        engine = QclusterEngine()
        engine.start(rng.standard_normal(3))
        query = engine.feedback(np.empty((0, 3)))
        assert query.size == 1
        assert engine.iteration == 1

    def test_score_validation(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        with pytest.raises(ValueError):
            engine.feedback(rng.standard_normal((5, 3)), scores=[1.0, 2.0])
        with pytest.raises(ValueError):
            engine.feedback(rng.standard_normal((2, 3)), scores=[1.0, -1.0])

    def test_max_clusters_budget_is_respected(self, rng):
        config = QclusterConfig(max_clusters=2)
        engine = QclusterEngine(config)
        engine.start(np.zeros(3))
        # Four well-separated blobs; budget forces down to 2.
        blobs = np.vstack(
            [rng.normal(offset, 0.3, (8, 3)) for offset in (0.0, 30.0, 60.0, 90.0)]
        )
        engine.feedback(blobs)
        assert engine.n_clusters <= 2

    def test_current_query_without_start_raises(self):
        with pytest.raises(RuntimeError):
            QclusterEngine().current_query()


class TestRetrievalBehaviour:
    def test_disjunctive_query_ranks_both_modes_high(self, rng):
        """The refined query must retrieve both modes of a complex query."""
        mode_a = rng.normal(-5.0, 0.4, (100, 3))
        mode_b = rng.normal(5.0, 0.4, (100, 3))
        noise = rng.uniform(-10.0, 10.0, (300, 3))
        database = np.vstack([mode_a, mode_b, noise])

        engine = QclusterEngine()
        engine.start(database[0])
        relevant = np.vstack([mode_a[:10], mode_b[:10]])
        query = engine.feedback(relevant)

        top = np.argsort(query.distances(database))[:100]
        hits_a = np.sum(top < 100)
        hits_b = np.sum((top >= 100) & (top < 200))
        assert hits_a > 30
        assert hits_b > 30

    def test_g_equals_one_matches_mindreader_form(self, rng):
        """With one cluster the query is a single quadratic contour."""
        engine = QclusterEngine(QclusterConfig(scheme="inverse", max_clusters=1))
        engine.start(np.zeros(3))
        relevant = rng.normal(2.0, 0.5, (30, 3))
        query = engine.feedback(relevant)
        assert query.size == 1
        # Distance is exactly the quadratic form around the weighted mean.
        x = rng.standard_normal(3)
        diff = x - query.points[0].center
        expected = diff @ query.points[0].inverse @ diff
        assert query.distance(x) == pytest.approx(float(expected))

    def test_merge_history_records(self, rng):
        engine = QclusterEngine(QclusterConfig(initial_clusters=6, max_clusters=2))
        engine.start(np.zeros(3))
        engine.feedback(rng.normal(0.0, 0.5, (30, 3)))
        # Hierarchical start at 6 clusters of one blob -> merges happened.
        assert len(engine.merge_history) >= 1


class TestBatchClassification:
    def test_batch_round_places_points(self, rng):
        engine = QclusterEngine(QclusterConfig(batch_classification=True))
        engine.start(np.zeros(3))
        engine.feedback(rng.normal(0.0, 0.4, (15, 3)))
        assert engine.n_clusters == 1
        engine.feedback(rng.normal(0.0, 0.4, (10, 3)))
        assert engine.n_clusters == 1
        assert engine.total_relevance_mass == pytest.approx(25.0)

    def test_batch_outliers_open_clusters_then_merge(self, rng):
        engine = QclusterEngine(QclusterConfig(batch_classification=True))
        engine.start(np.zeros(3))
        engine.feedback(rng.normal(0.0, 0.4, (15, 3)))
        # A far-away batch: every point is an outlier against the fixed
        # snapshot; merging consolidates them into one new cluster.
        engine.feedback(rng.normal(12.0, 0.4, (10, 3)))
        assert engine.n_clusters == 2

    def test_batch_and_sequential_similar_outcome(self, rng):
        points_round1 = rng.normal(0.0, 0.4, (12, 3))
        points_round2 = np.vstack(
            [rng.normal(0.0, 0.4, (6, 3)), rng.normal(10.0, 0.4, (6, 3))]
        )
        outcomes = {}
        for batch in (False, True):
            engine = QclusterEngine(QclusterConfig(batch_classification=batch))
            engine.start(np.zeros(3))
            engine.feedback(points_round1)
            engine.feedback(points_round2)
            outcomes[batch] = engine.n_clusters
        assert outcomes[False] == outcomes[True]
