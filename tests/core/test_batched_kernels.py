"""Batched scan kernels: bitwise identity with their solo counterparts.

The micro-batching executor may only coalesce queries because the
kernel layer guarantees *bitwise* reproducibility: scoring a query
inside a batch makes exactly the same per-tile kernel calls as scoring
it alone.  That holds structurally — `batch_tile_bounds` is a pure
function of the matrix geometry, never of the batch — and these tests
pin the structure and the resulting bytes, including the degenerate
tail shapes where a naive tiling would change BLAS code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels as kernels_module
from repro.core.kernels import (
    batch_tile_bounds,
    batched_per_cluster_distances,
    compile_query,
)
from repro.core.progressive import exact_top_k
from repro.parallel import scan_shard_topk, scan_shard_topk_batch

from .test_kernels import random_query


class TestBatchTileBounds:
    @pytest.mark.parametrize("n,p", [(1, 4), (7, 3), (1000, 16), (50_000, 64)])
    def test_tiles_cover_rows_contiguously(self, n, p):
        bounds = batch_tile_bounds(n, p)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_short_tail_is_merged_into_the_previous_tile(self):
        tile = kernels_module._BATCH_TILE_ELEMENTS // 64
        bounds = batch_tile_bounds(tile + 1, 64)
        # Not a 1-row trailing tile (whose GEMV would take a different
        # BLAS accumulation path than the same row inside a panel).
        assert bounds == [(0, tile + 1)]

    def test_exact_multiple_keeps_full_tiles(self):
        tile = kernels_module._BATCH_TILE_ELEMENTS // 32
        bounds = batch_tile_bounds(3 * tile, 32)
        assert bounds == [(0, tile), (tile, 2 * tile), (2 * tile, 3 * tile)]

    def test_every_tile_is_at_least_full_height(self):
        tile = kernels_module._BATCH_TILE_ELEMENTS // 48
        for n in (2 * tile - 1, 2 * tile + 1, 5 * tile + tile // 2):
            for start, stop in batch_tile_bounds(n, 48):
                assert stop - start >= tile

    def test_wide_rows_shrink_the_tile(self):
        narrow = batch_tile_bounds(100_000, 8)
        wide = batch_tile_bounds(100_000, 512)
        assert len(wide) > len(narrow)


class TestBatchedPerClusterDistances:
    @pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
    def test_matches_solo_compiled_evaluation(self, scheme):
        rng = np.random.default_rng(17)
        database = 3.0 * rng.standard_normal((400, 10))
        queries = [
            compile_query(random_query(rng, scheme, g=g, p=10)) for g in (1, 2, 3)
        ]
        batched = batched_per_cluster_distances(queries, database)
        for compiled, matrix in zip(queries, batched):
            np.testing.assert_allclose(
                matrix,
                compiled.per_cluster_distances(database),
                rtol=1e-9,
                atol=1e-12,
            )

    @pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
    def test_batch_membership_never_changes_bytes(self, scheme, monkeypatch):
        """Query scored alone == the same query inside a batch, bitwise
        — across tile-boundary row counts (the shapes where a naive
        tiling would flip BLAS code paths)."""
        monkeypatch.setattr(kernels_module, "_BATCH_TILE_ELEMENTS", 1 << 10)
        rng = np.random.default_rng(18)
        p = 8
        tile = (1 << 10) // p
        for n in (tile - 1, tile, tile + 1, 2 * tile - 1, 3 * tile + 5):
            database = 3.0 * rng.standard_normal((n, p))
            queries = [
                compile_query(random_query(rng, scheme, g=g, p=p))
                for g in (2, 1, 3)
            ]
            solo = [
                batched_per_cluster_distances([compiled], database)[0]
                for compiled in queries
            ]
            together = batched_per_cluster_distances(queries, database)
            for alone, inside in zip(solo, together):
                assert alone.tobytes() == inside.tobytes(), f"n={n}"

    def test_empty_batch_is_fine(self):
        assert batched_per_cluster_distances([], np.zeros((5, 3))) == []


class _OpaqueQuery:
    """A query type the kernel layer cannot compile (no cluster
    structure) — exercises the per-query ``distances`` fallback."""

    def __init__(self, center: np.ndarray) -> None:
        self.center = center

    def distances(self, vectors: np.ndarray) -> np.ndarray:
        deltas = vectors - self.center
        return np.einsum("ij,ij->i", deltas, deltas)


class TestBatchedShardScan:
    @pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
    def test_batch_scan_byte_identical_to_solo_scans(self, scheme):
        """`scan_shard_topk_batch` == N× `scan_shard_topk`, bitwise,
        for a mixed batch: compilable multi-cluster queries, a
        single-point query, and an opaque query type."""
        rng = np.random.default_rng(19)
        shard = 2.0 * rng.standard_normal((600, 12))
        shard[50:100] = shard[0:50]  # exact ties exercise the id order
        queries = [
            random_query(rng, scheme, g=3, p=12),
            _OpaqueQuery(shard[7].copy()),
            random_query(rng, scheme, g=1, p=12),
            random_query(rng, scheme, g=2, p=12),
        ]
        ks = [10, 5, 20, 10]
        batched = scan_shard_topk_batch(queries, shard, 100, ks)
        assert len(batched) == len(queries)
        for query, k, (ids, distances, pruned, refined, exact) in zip(
            queries, ks, batched
        ):
            solo_ids, solo_distances, _, _ = scan_shard_topk(query, shard, 100, k)
            assert ids.tobytes() == solo_ids.tobytes()
            assert distances.tobytes() == solo_distances.tobytes()
            assert exact is True

    def test_progressive_batch_matches_solo_with_and_without_coarse(self):
        """At progressive-eligible dimension the batched level-0 pass
        (stacked prefix GEMM or PCA coarse bounds) must leave every
        page byte-identical to its solo scan."""
        from repro.core.pca import PCA
        from repro.core.progressive import CoarseLevel0, progressive_topk_batch

        rng = np.random.default_rng(21)
        p = 20
        scales = (1.0 / (1.0 + np.arange(p))) ** 0.8
        shard = 2.0 * rng.standard_normal((2600, p)) * scales
        queries = [random_query(rng, "inverse", g=g, p=p) for g in (1, 3, 2)]
        ks = [8, 12, 8]
        pca = PCA(n_components=6).fit(shard)
        coarse = CoarseLevel0(
            (shard - pca.mean_) @ pca.components_.T, pca.mean_, pca.components_
        )
        for level0 in (None, coarse):
            batched = progressive_topk_batch(shard, queries, ks, coarse=level0)
            assert all(result is not None for result in batched)
            for query, k, result in zip(queries, ks, batched):
                solo_ids, solo_distances, _, _ = scan_shard_topk(
                    query, shard, 0, k, coarse=level0
                )
                assert result.indices.tobytes() == solo_ids.tobytes()
                assert result.distances.tobytes() == solo_distances.tobytes()

    def test_full_scan_fallback_matches_exact_top_k(self):
        rng = np.random.default_rng(20)
        shard = rng.standard_normal((80, 4))  # below _MIN_DIMENSION
        query = random_query(rng, "inverse", g=2, p=4)
        [(ids, distances, pruned, refined, exact)] = scan_shard_topk_batch(
            [query], shard, 0, [6]
        )
        reference = query.distances(shard)
        top = exact_top_k(reference, 6)
        assert ids.tolist() == top.tolist()
        np.testing.assert_array_equal(distances, reference[top])
        assert pruned == 0 and refined == shard.shape[0]
        assert exact is True
