"""Covariance inversion schemes (diagonal vs full inverse)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.covariance import (
    DiagonalScheme,
    InverseScheme,
    get_scheme,
)


def random_spd(rng, dim=4, scale=1.0):
    raw = rng.standard_normal((dim + 3, dim)) * scale
    return raw.T @ raw / (dim + 3)


class TestDiagonalScheme:
    def test_inverts_only_the_diagonal(self, rng):
        covariance = random_spd(rng)
        info = DiagonalScheme().invert(covariance)
        np.testing.assert_allclose(
            np.diag(info.inverse), 1.0 / np.diag(covariance), rtol=1e-12
        )
        off_diagonal = info.inverse - np.diag(np.diag(info.inverse))
        np.testing.assert_array_equal(off_diagonal, np.zeros_like(off_diagonal))

    def test_log_det_of_diagonalized_matrix(self, rng):
        covariance = random_spd(rng)
        info = DiagonalScheme().invert(covariance)
        assert info.log_det_covariance == pytest.approx(
            float(np.sum(np.log(np.diag(covariance))))
        )

    def test_regularizes_zero_variance(self):
        covariance = np.diag([1.0, 0.0])
        info = DiagonalScheme(regularization=1e-4).invert(covariance)
        assert info.inverse[1, 1] == pytest.approx(1e4)

    def test_handles_singular_matrix_without_error(self):
        # The singularity issue of Section 3.2: one point, zero scatter.
        info = DiagonalScheme().invert(np.zeros((3, 3)))
        assert np.all(np.isfinite(info.inverse))


class TestInverseScheme:
    def test_near_exact_inverse_for_spd(self, rng):
        covariance = random_spd(rng)
        info = InverseScheme(regularization=1e-12).invert(covariance)
        np.testing.assert_allclose(info.inverse, np.linalg.inv(covariance), rtol=1e-4)

    def test_log_det_matches_slogdet(self, rng):
        covariance = random_spd(rng)
        info = InverseScheme(regularization=1e-12).invert(covariance)
        _, expected = np.linalg.slogdet(covariance)
        assert info.log_det_covariance == pytest.approx(expected, abs=1e-4)

    def test_singular_matrix_is_regularized(self):
        info = InverseScheme(regularization=1e-6).invert(np.zeros((3, 3)))
        assert np.all(np.isfinite(info.inverse))
        assert info.inverse[0, 0] > 0

    def test_pathological_negative_matrix_falls_back(self):
        # Accumulated round-off can push eigenvalues negative; the
        # eigenvalue-floor fallback must still return a usable inverse.
        matrix = np.diag([1.0, -0.5, 2.0])
        info = InverseScheme(regularization=1e-6).invert(matrix)
        assert np.all(np.isfinite(info.inverse))
        eigenvalues = np.linalg.eigvalsh(info.inverse)
        assert eigenvalues.min() > 0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            InverseScheme().invert(np.ones((2, 3)))

    def test_rejects_non_finite(self):
        matrix = np.eye(2)
        matrix[0, 1] = np.nan
        with pytest.raises(ValueError):
            InverseScheme().invert(matrix)


class TestSchemeRegistry:
    def test_lookup(self):
        assert isinstance(get_scheme("diagonal"), DiagonalScheme)
        assert isinstance(get_scheme("inverse"), InverseScheme)

    def test_regularization_passthrough(self):
        scheme = get_scheme("diagonal", regularization=0.5)
        assert scheme.regularization == 0.5

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown covariance scheme"):
            get_scheme("cholesky")

    def test_rejects_negative_regularization(self):
        with pytest.raises(ValueError):
            DiagonalScheme(regularization=-1.0)


class TestSchemesAgreeWhenDiagonal:
    def test_diagonal_covariance_gives_same_inverse(self, rng):
        variances = rng.uniform(0.5, 3.0, 4)
        covariance = np.diag(variances)
        diag_info = DiagonalScheme(regularization=0.0).invert(covariance)
        inv_info = InverseScheme(regularization=1e-14).invert(covariance)
        np.testing.assert_allclose(diag_info.inverse, inv_info.inverse, rtol=1e-6)
