"""Progressive filter-and-refine scan: byte-identical to the full scan.

The progressive layer (`repro.core.progressive`) may only ever change
*cost*: for every eligible query the filtered/refined top-k — through
`progressive_topk`, `LinearScan`, `HybridTree`, the multipoint
searchers and the service's sharded scan — must be byte-identical to
the reference full scan under the shared ``(distance, index)`` order.
These tests pin that contract across covariance schemes, mixed
queries, PCA-reduced bases and deliberate distance ties, and check the
lower bounds themselves are sound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.covariance import get_scheme
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.core.kernels import compile_query, use_kernels
from repro.core.progressive import (
    ProgressiveScan,
    default_schedule,
    exact_top_k,
    plan_for,
    progressive_enabled,
    progressive_topk,
    prune_threshold,
    use_progressive,
)
from repro.index.hybridtree import HybridTree
from repro.index.linear import LinearScan, SearchCost

P = 32
N = 4_096
K = 20


@pytest.fixture(scope="module")
def database() -> np.ndarray:
    """Anisotropic rotated database — realistic decaying spectrum."""
    rng = np.random.default_rng(101)
    scales = 1.0 / np.sqrt(np.arange(1, P + 1))
    rotation, _ = np.linalg.qr(rng.standard_normal((P, P)))
    return np.ascontiguousarray(
        (rng.standard_normal((N, P)) * scales) @ rotation.T
    )


def feedback_query(
    database: np.ndarray,
    rng: np.random.Generator,
    scheme_names,
) -> DisjunctiveQuery:
    """Clusters built from actual database neighbourhoods, like a real
    relevance-feedback round (centers inside the data — the regime
    where filtering has something to prune)."""
    points = []
    for scheme_name in scheme_names:
        scheme = get_scheme(scheme_name)
        anchor = database[rng.integers(0, database.shape[0])]
        gaps = database - anchor
        nearest = np.argpartition(np.einsum("ij,ij->i", gaps, gaps), 64)[:64]
        cloud = database[nearest]
        info = scheme.invert(np.cov(cloud, rowvar=False))
        points.append(
            QueryPoint(
                center=cloud.mean(axis=0),
                inverse=info.inverse,
                weight=float(rng.uniform(0.5, 3.0)),
                diagonal=info.diagonal,
            )
        )
    return DisjunctiveQuery(points)


def reference_topk(database, query, k):
    """The naive-order reference: full distances + deterministic order."""
    with use_progressive(False):
        distances = query.distances(database)
    top = exact_top_k(distances, k)
    return top, distances[top]


class TestExactTopK:
    def test_matches_full_sort(self):
        rng = np.random.default_rng(3)
        distances = rng.random(500)
        top = exact_top_k(distances, 25)
        np.testing.assert_array_equal(top, np.argsort(distances)[:25])

    def test_ties_resolved_by_position(self):
        distances = np.array([5.0, 1.0, 1.0, 1.0, 9.0])
        np.testing.assert_array_equal(exact_top_k(distances, 2), [1, 2])

    def test_ties_resolved_by_tie_break_keys(self):
        distances = np.array([5.0, 1.0, 1.0, 1.0, 9.0])
        keys = np.array([50, 40, 30, 20, 10])
        np.testing.assert_array_equal(
            exact_top_k(distances, 2, tie_break=keys), [3, 2]
        )

    def test_k_at_least_n_returns_full_order(self):
        distances = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(exact_top_k(distances, 10), [1, 2, 0])

    def test_result_is_sorted_by_distance_then_index(self):
        rng = np.random.default_rng(7)
        distances = rng.integers(0, 5, size=200).astype(float)  # many ties
        top = exact_top_k(distances, 50)
        pairs = list(zip(distances[top], top))
        assert pairs == sorted(pairs)


class TestByteIdenticalTopK:
    @pytest.mark.parametrize(
        "schemes",
        [
            ["inverse"] * 4,
            ["inverse", "diagonal", "inverse", "diagonal"],
            ["inverse"],  # single point: no harmonic combination
        ],
        ids=["inverse", "mixed", "single"],
    )
    def test_progressive_matches_reference(self, database, schemes):
        rng = np.random.default_rng(11)
        for _ in range(3):
            query = feedback_query(database, rng, schemes)
            with use_progressive(True, min_rows=256):
                result = progressive_topk(database, query, K)
            assert result is not None  # the fast path actually ran
            ref_ids, ref_distances = reference_topk(database, query, K)
            np.testing.assert_array_equal(result.indices, ref_ids)
            np.testing.assert_array_equal(result.distances, ref_distances)
            assert result.stats.refined + result.stats.pruned == N

    def test_progressive_actually_prunes_on_anisotropic_data(self, database):
        rng = np.random.default_rng(13)
        query = feedback_query(database, rng, ["inverse"] * 4)
        with use_progressive(True, min_rows=256):
            result = progressive_topk(database, query, K)
        assert result is not None
        assert result.stats.pruned > N // 2
        assert result.stats.refine_fraction < 0.5

    def test_byte_identical_under_distance_ties(self, database):
        """Duplicated rows produce exact ties at the k boundary; both
        paths must resolve them by the same (distance, index) rule."""
        rng = np.random.default_rng(17)
        tied = np.vstack([database, database[:200]])  # 200 exact duplicates
        query = feedback_query(database, rng, ["inverse"] * 3)
        with use_progressive(True, min_rows=256):
            result = progressive_topk(tied, query, 64)
        assert result is not None
        ref_ids, ref_distances = reference_topk(tied, query, 64)
        np.testing.assert_array_equal(result.indices, ref_ids)
        np.testing.assert_array_equal(result.distances, ref_distances)

    def test_pca_reduced_basis(self, database):
        """Theorem 1: the whole contract survives a PCA projection."""
        from repro.core.pca import PCA

        reduced = PCA(n_components=20).fit(database).transform(database)
        reduced = np.ascontiguousarray(reduced)
        rng = np.random.default_rng(19)
        query = feedback_query(reduced, rng, ["inverse"] * 3)
        with use_progressive(True, min_rows=256):
            result = progressive_topk(reduced, query, K)
        assert result is not None
        ref_ids, ref_distances = reference_topk(reduced, query, K)
        np.testing.assert_array_equal(result.indices, ref_ids)
        np.testing.assert_array_equal(result.distances, ref_distances)

    def test_progressive_scan_falls_back_for_pure_diagonal(self, database):
        """A pure-diagonal scan is already memory-bound O(N·p): the
        filter is documented ineligible, and the fallback must still
        return the reference ordering."""
        rng = np.random.default_rng(23)
        query = feedback_query(database, rng, ["diagonal"] * 4)
        with use_progressive(True, min_rows=256):
            assert progressive_topk(database, query, K) is None
            result = ProgressiveScan(database).knn(query, K)
        ref_ids, ref_distances = reference_topk(database, query, K)
        np.testing.assert_array_equal(result.indices, ref_ids)
        np.testing.assert_array_equal(result.distances, ref_distances)
        assert result.stats.refine_fraction == 1.0


class TestConsumerPaths:
    def test_linear_scan_byte_identical_and_cheaper(self, database):
        rng = np.random.default_rng(29)
        query = feedback_query(database, rng, ["inverse"] * 4)
        scan = LinearScan(database)
        with use_progressive(True, min_rows=256):
            fast = scan.knn(query, K)
        with use_progressive(False):
            slow = scan.knn(query, K)
        np.testing.assert_array_equal(fast.indices, slow.indices)
        np.testing.assert_array_equal(fast.distances, slow.distances)
        assert slow.cost.distance_evaluations == N
        assert fast.cost.distance_evaluations < N
        assert fast.cost.candidates_pruned > 0
        assert (
            fast.cost.distance_evaluations + fast.cost.candidates_pruned == N
        )
        assert fast.cost.refine_fraction < 1.0
        assert slow.cost.refine_fraction == 1.0

    def test_hybridtree_knn_identical_ordering(self, database):
        # The leaf filter shrinks the candidate array handed to the
        # kernels, so BLAS may choose a different GEMM blocking; the
        # returned *ordering* is identical, distances to within 1 ulp.
        rng = np.random.default_rng(31)
        tree = HybridTree(database)
        pruned_total = 0
        for schemes in (["inverse"] * 3, ["inverse", "diagonal"]):
            query = feedback_query(database, rng, schemes)
            with use_progressive(True, min_rows=256):
                fast = tree.knn(query, K)
            with use_progressive(False):
                slow = tree.knn(query, K)
            np.testing.assert_array_equal(fast.indices, slow.indices)
            np.testing.assert_allclose(
                fast.distances, slow.distances, rtol=1e-12
            )
            assert slow.cost.candidates_pruned == 0
            pruned_total += fast.cost.candidates_pruned
        assert pruned_total >= 0  # leaf filtering may or may not trigger

    def test_hybridtree_range_query_identical_membership(self, database):
        rng = np.random.default_rng(37)
        tree = HybridTree(database)
        query = feedback_query(database, rng, ["inverse"] * 3)
        with use_progressive(False):
            radius = float(np.quantile(query.distances(database), 0.02))
            slow = tree.range_query(query, radius)
        with use_progressive(True, min_rows=256):
            fast = tree.range_query(query, radius)
        np.testing.assert_array_equal(fast.indices, slow.indices)
        np.testing.assert_allclose(fast.distances, slow.distances, rtol=1e-12)

    def test_multipoint_searchers_byte_identical(self, database):
        from repro.index.multipoint import CentroidSearcher, MultipointSearcher

        rng = np.random.default_rng(41)
        tree = HybridTree(database)
        query = feedback_query(database, rng, ["inverse"] * 3)
        with use_progressive(True, min_rows=256):
            fast_multi = MultipointSearcher(tree).search(query, K)
            fast_centroid = CentroidSearcher(tree).search(query, K)
        with use_progressive(False):
            slow_multi = MultipointSearcher(tree).search(query, K)
            slow_centroid = CentroidSearcher(tree).search(query, K)
        np.testing.assert_array_equal(fast_multi.indices, slow_multi.indices)
        np.testing.assert_array_equal(
            fast_centroid.indices, slow_centroid.indices
        )

    def test_sharded_service_scan_byte_identical(self, database):
        from repro.service import RetrievalService

        rng = np.random.default_rng(43)
        query = feedback_query(database, rng, ["inverse"] * 3)
        service = RetrievalService(
            database, use_index=False, n_shards=4, cache_size=0, k=K
        )
        try:
            with use_progressive(True, min_rows=256):
                fast_ids, fast_distances, _ = service._sharded_scan(query, K)
            with use_progressive(False):
                slow_ids, slow_distances, _ = service._sharded_scan(query, K)
        finally:
            service.shutdown()
        np.testing.assert_array_equal(fast_ids, slow_ids)
        np.testing.assert_array_equal(fast_distances, slow_distances)

    def test_sharded_scan_reports_pruning_metrics(self, database):
        from repro.service import RetrievalService

        rng = np.random.default_rng(47)
        query = feedback_query(database, rng, ["inverse"] * 3)
        service = RetrievalService(
            database, use_index=False, n_shards=2, cache_size=0, k=K
        )
        try:
            with use_progressive(True, min_rows=256):
                service._sharded_scan(query, K)
            snapshot = service.metrics.snapshot()
        finally:
            service.shutdown()
        counters = snapshot["counters"]
        assert counters["candidates_refined"] > 0
        assert counters["candidates_pruned"] > 0
        assert (
            counters["candidates_pruned"] + counters["candidates_refined"] == N
        )
        assert 0.0 < snapshot["refine_fraction"] < 1.0


class TestBoundSoundness:
    def test_prefix_bounds_never_exceed_exact_distances(self, database):
        """Every schedule level's combined prefix bound must lower-bound
        the exact aggregate distance (within the pruning slack) — for
        whitened *and* diagonal clusters alike."""
        rng = np.random.default_rng(53)
        query = feedback_query(
            database, rng, ["inverse", "diagonal", "inverse"]
        )
        compiled = compile_query(query)
        plan = plan_for(compiled)
        assert plan is not None
        rows = database[:512]
        exact = query.distances(rows)
        context = plan.scan_context(database)
        accumulated = None
        previous = 0
        for level in plan.schedule:
            increment = context.prefix_distances(rows, previous, level)
            accumulated = (
                increment if accumulated is None else accumulated + increment
            )
            bound = query.combine_per_cluster(accumulated)
            assert np.all(bound <= prune_threshold(1.0) * np.maximum(exact, 1e-9))
            previous = level
        # At the full dimension the whitened bound matches the distance.
        np.testing.assert_allclose(bound, exact, rtol=1e-6)

    def test_box_bounds_never_exceed_contained_point_distances(self, database):
        rng = np.random.default_rng(59)
        query = feedback_query(database, rng, ["inverse", "diagonal"])
        plan = plan_for(compile_query(query))
        assert plan is not None
        per_cluster_exact = query.per_cluster_distances(database[:256])
        for _ in range(20):
            rows = database[rng.choice(256, size=8, replace=False)]
            low, high = rows.min(axis=0), rows.max(axis=0)
            bounds = plan.box_lower_bounds(low, high)
            inside = (database[:256] >= low).all(axis=1) & (
                database[:256] <= high
            ).all(axis=1)
            if not inside.any():
                continue
            minima = per_cluster_exact[:, inside].min(axis=1)
            assert np.all(bounds <= prune_threshold(1.0) * np.maximum(minima, 1e-9))


class TestEligibilityAndHatch:
    def test_disabled_layer_returns_none(self, database):
        rng = np.random.default_rng(61)
        query = feedback_query(database, rng, ["inverse"] * 2)
        assert progressive_enabled()
        with use_progressive(False):
            assert not progressive_enabled()
            assert progressive_topk(database, query, K) is None

    def test_disabled_kernels_return_none(self, database):
        rng = np.random.default_rng(67)
        query = feedback_query(database, rng, ["inverse"] * 2)
        with use_progressive(True, min_rows=256), use_kernels(False):
            assert progressive_topk(database, query, K) is None

    def test_small_scans_and_large_k_fall_back(self, database):
        rng = np.random.default_rng(71)
        query = feedback_query(database, rng, ["inverse"] * 2)
        assert progressive_topk(database[:512], query, K) is None  # < min rows
        with use_progressive(True, min_rows=256):
            assert progressive_topk(database, query, N // 2) is None  # k ~ N

    def test_low_dimension_is_ineligible(self):
        rng = np.random.default_rng(73)
        database = rng.standard_normal((4096, 8))
        query = feedback_query(database, rng, ["inverse"] * 2)
        with use_progressive(True, min_rows=256):
            assert progressive_topk(database, query, K) is None

    def test_indefinite_inverse_is_ineligible(self, database):
        indefinite = -np.eye(P)
        query = DisjunctiveQuery(
            [QueryPoint(center=np.zeros(P), inverse=indefinite, weight=1.0)]
        )
        assert plan_for(compile_query(query)) is None

    def test_queries_without_cluster_structure_fall_back(self, database):
        class Opaque:
            def distances(self, rows):
                return np.einsum("ij,ij->i", rows, rows)

        with use_progressive(True, min_rows=256):
            assert progressive_topk(database, Opaque(), K) is None

    def test_use_progressive_restores_min_rows(self):
        from repro.core.progressive import progressive_min_rows

        before = progressive_min_rows()
        with use_progressive(True, min_rows=7):
            assert progressive_min_rows() == 7
        assert progressive_min_rows() == before


class TestStatsAndSchedule:
    def test_default_schedule_shape(self):
        assert default_schedule(128) == (16, 32, 128)
        assert default_schedule(32) == (4, 8, 32)
        assert default_schedule(2) == (1, 2)
        assert default_schedule(1) == (1,)

    def test_search_cost_refine_fraction(self):
        cost = SearchCost(1, 1, 0, distance_evaluations=25, candidates_pruned=75)
        assert cost.refine_fraction == pytest.approx(0.25)
        assert SearchCost(1, 1, 0, 0).refine_fraction == 1.0

    def test_scan_stats_consistency(self, database):
        rng = np.random.default_rng(79)
        query = feedback_query(database, rng, ["inverse"] * 4)
        with use_progressive(True, min_rows=256):
            result = progressive_topk(database, query, K)
        stats = result.stats
        assert stats.filtered == N
        assert stats.schedule == default_schedule(P)
        assert len(stats.survivors_per_level) >= 1
        assert stats.refined >= K  # the seed is always refined
        assert 0.0 < stats.refine_fraction <= 1.0
