"""PCA and the quadratic forms in the principal-component basis (Sec. 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pca import PCA, select_dimension_by_variance, t2_in_pc_basis
from repro.stats.hotelling import hotelling_t2


def correlated_data(rng, n=200, dim=6):
    latent = rng.standard_normal((n, 2))
    mixing = rng.standard_normal((2, dim))
    return latent @ mixing + 0.05 * rng.standard_normal((n, dim))


class TestPCA:
    def test_components_are_orthonormal(self, rng):
        data = correlated_data(rng)
        pca = PCA().fit(data)
        gram = pca.components_ @ pca.components_.T
        np.testing.assert_allclose(gram, np.eye(6), atol=1e-10)

    def test_variances_are_sorted(self, rng):
        pca = PCA().fit(correlated_data(rng))
        variances = pca.explained_variance_
        assert np.all(np.diff(variances) <= 1e-12)

    def test_transform_decorrelates(self, rng):
        data = correlated_data(rng)
        projected = PCA().fit_transform(data)
        covariance = np.cov(projected, rowvar=False)
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 1e-8

    def test_full_roundtrip(self, rng):
        data = correlated_data(rng)
        pca = PCA().fit(data)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(data)), data, atol=1e-8
        )

    def test_truncated_reconstruction_captures_structure(self, rng):
        data = correlated_data(rng)
        pca = PCA(n_components=2).fit(data)
        reconstructed = pca.inverse_transform(pca.transform(data))
        residual = np.linalg.norm(data - reconstructed) / np.linalg.norm(data)
        assert residual < 0.1  # 2 latent dims -> 2 PCs suffice

    def test_select_components_rule(self, rng):
        data = correlated_data(rng)
        pca = PCA().fit(data)
        k = pca.select_components(0.85)
        cumulative = np.cumsum(pca.explained_variance_ratio_)
        assert cumulative[k - 1] >= 0.85 - 1e-9
        if k > 1:
            assert cumulative[k - 2] < 0.85

    def test_select_dimension_helper(self, rng):
        data = correlated_data(rng)
        # epsilon = 0.15 -> retain 85% variance; 2 latent dims -> k = 2.
        assert select_dimension_by_variance(data, epsilon=0.15) == 2

    def test_truncated_copy(self, rng):
        pca = PCA().fit(correlated_data(rng))
        truncated = pca.truncated(3)
        assert truncated.components_.shape == (3, 6)
        np.testing.assert_allclose(truncated.components_, pca.components_[:3])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA(n_components=10).fit(rng.standard_normal((20, 3)))
        with pytest.raises(ValueError):
            PCA().fit(rng.standard_normal((1, 3)))
        with pytest.raises(RuntimeError):
            PCA().transform(rng.standard_normal((5, 3)))


class TestT2InPCBasis:
    def test_equation_17_invariance(self, rng):
        """T^2 computed in the full PC basis equals the original T^2."""
        points_a = rng.standard_normal((40, 5))
        points_b = rng.standard_normal((40, 5)) + 0.8
        pooled = np.vstack([points_a - points_a.mean(0), points_b - points_b.mean(0)])
        pooled_cov = pooled.T @ pooled / 80.0
        eigenvalues, eigenvectors = np.linalg.eigh(pooled_cov)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues, eigenvectors = eigenvalues[order], eigenvectors[:, order]

        original = hotelling_t2(
            points_a.mean(0), points_b.mean(0), np.linalg.inv(pooled_cov), 40.0, 40.0
        )
        in_pc = t2_in_pc_basis(
            eigenvectors.T @ points_a.mean(0),
            eigenvectors.T @ points_b.mean(0),
            eigenvalues,
            40.0,
            40.0,
        )
        assert in_pc == pytest.approx(original, rel=1e-8)

    def test_truncation_approximates(self, rng):
        """Equation 19: leading components approximate the full T^2."""
        # Strongly anisotropic pooled covariance: most variance in 2 dims.
        scales = np.array([5.0, 3.0, 0.1, 0.1, 0.1])
        points_a = rng.standard_normal((60, 5)) * scales
        points_b = rng.standard_normal((60, 5)) * scales + np.array([2.0, 1.0, 0, 0, 0])
        pooled = np.vstack([points_a - points_a.mean(0), points_b - points_b.mean(0)])
        pooled_cov = pooled.T @ pooled / 120.0
        eigenvalues, eigenvectors = np.linalg.eigh(pooled_cov)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues, eigenvectors = eigenvalues[order], eigenvectors[:, order]

        full = t2_in_pc_basis(
            eigenvectors.T @ points_a.mean(0),
            eigenvectors.T @ points_b.mean(0),
            eigenvalues,
            60.0,
            60.0,
        )
        k = 2
        truncated = t2_in_pc_basis(
            (eigenvectors[:, :k]).T @ points_a.mean(0),
            (eigenvectors[:, :k]).T @ points_b.mean(0),
            eigenvalues[:k],
            60.0,
            60.0,
        )
        # The mean shift lives in the top-2 subspace, so the truncated
        # statistic must capture the bulk of the full one.
        assert truncated == pytest.approx(full, rel=0.35)
        assert truncated <= full + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            t2_in_pc_basis(np.zeros(2), np.zeros(3), np.ones(2), 1.0, 1.0)
        with pytest.raises(ValueError):
            t2_in_pc_basis(np.zeros(2), np.zeros(2), np.array([1.0, 0.0]), 1.0, 1.0)
        with pytest.raises(ValueError):
            t2_in_pc_basis(np.zeros(2), np.zeros(2), np.ones(2), 0.0, 1.0)
