"""Cluster merging (Algorithm 3): the Hotelling merge loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.core.covariance import InverseScheme
from repro.core.merging import ClusterMerger, pairwise_merge_test


class TestPairwiseMergeTest:
    def test_same_population_merges(self, rng):
        a = Cluster(rng.standard_normal((30, 3)))
        b = Cluster(rng.standard_normal((30, 3)))
        result = pairwise_merge_test(a, b, significance_level=0.05)
        assert result.should_merge

    def test_distant_populations_stay_separate(self, rng):
        a = Cluster(rng.standard_normal((30, 3)))
        b = Cluster(rng.standard_normal((30, 3)) + 10.0)
        result = pairwise_merge_test(a, b, significance_level=0.05)
        assert not result.should_merge
        assert result.statistic > result.critical

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            pairwise_merge_test(
                Cluster(rng.standard_normal((5, 2))), Cluster(rng.standard_normal((5, 3)))
            )

    def test_invariance_under_linear_transform(self, rng):
        """Theorem 1 applied to the merge statistic (inverse scheme)."""
        a_points = rng.standard_normal((20, 3))
        b_points = rng.standard_normal((20, 3)) + 1.0
        transform = rng.standard_normal((3, 3)) + 2.0 * np.eye(3)
        scheme = InverseScheme(regularization=1e-12)
        original = pairwise_merge_test(Cluster(a_points), Cluster(b_points), scheme)
        mapped = pairwise_merge_test(
            Cluster(a_points @ transform.T), Cluster(b_points @ transform.T), scheme
        )
        assert mapped.statistic == pytest.approx(original.statistic, rel=1e-6)
        assert mapped.critical == pytest.approx(original.critical)


class TestClusterMerger:
    def test_merges_coincident_clusters(self, rng):
        shared = rng.standard_normal((60, 3))
        clusters = [Cluster(shared[:30]), Cluster(shared[30:])]
        merged, records = ClusterMerger().merge(clusters)
        assert len(merged) == 1
        assert len(records) == 1
        assert not records[0].forced

    def test_keeps_distant_clusters(self, rng):
        clusters = [
            Cluster(rng.standard_normal((30, 3))),
            Cluster(rng.standard_normal((30, 3)) + 12.0),
        ]
        merged, records = ClusterMerger(max_clusters=5).merge(clusters)
        assert len(merged) == 2
        assert records == []

    def test_enforces_max_clusters_by_forcing(self, rng):
        # Five well-separated blobs, budget of 2: forced merges must occur.
        clusters = [
            Cluster(rng.standard_normal((20, 2)) + offset)
            for offset in (0.0, 20.0, 40.0, 60.0, 80.0)
        ]
        merged, records = ClusterMerger(max_clusters=2).merge(clusters)
        assert len(merged) == 2
        assert any(record.forced for record in records)

    def test_input_not_mutated(self, rng):
        shared = rng.standard_normal((40, 2))
        clusters = [Cluster(shared[:20]), Cluster(shared[20:])]
        ClusterMerger().merge(clusters)
        assert len(clusters) == 2

    def test_single_cluster_is_noop(self, rng):
        clusters = [Cluster(rng.standard_normal((10, 2)))]
        merged, records = ClusterMerger().merge(clusters)
        assert merged == clusters
        assert records == []

    def test_merged_weight_accumulates(self, rng):
        shared = rng.standard_normal((40, 2))
        clusters = [
            Cluster(shared[:20], scores=np.full(20, 2.0)),
            Cluster(shared[20:], scores=np.full(20, 3.0)),
        ]
        merged, _ = ClusterMerger().merge(clusters)
        assert merged[0].weight == pytest.approx(100.0)

    def test_three_blobs_two_coincident(self, rng):
        shared = rng.standard_normal((40, 3))
        clusters = [
            Cluster(shared[:20]),
            Cluster(shared[20:]),
            Cluster(rng.standard_normal((20, 3)) + 15.0),
        ]
        merged, _ = ClusterMerger(max_clusters=5).merge(clusters)
        assert len(merged) == 2

    def test_tiny_clusters_merge_despite_no_test_power(self, rng):
        # Single-point clusters: df2 <= 0 so the critical distance is
        # infinite and the pair merges (the paper's initial iteration).
        clusters = [
            Cluster(np.array([[0.0, 0.0]])),
            Cluster(np.array([[0.5, 0.5]])),
        ]
        merged, _ = ClusterMerger(max_clusters=1).merge(clusters)
        assert len(merged) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterMerger(max_clusters=0)
        with pytest.raises(ValueError):
            ClusterMerger(relax_factor=1.0)
        with pytest.raises(ValueError):
            ClusterMerger(min_alpha=0.5, significance_level=0.05)

    def test_merge_records_carry_significance(self, rng):
        shared = rng.standard_normal((40, 2))
        clusters = [Cluster(shared[:20]), Cluster(shared[20:])]
        _, records = ClusterMerger(significance_level=0.03).merge(clusters)
        assert records[0].significance_level == pytest.approx(0.03)
