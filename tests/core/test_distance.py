"""Distance functions: Equations 1, 4 and 5 plus the Example 3 scenario."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst
from hypothesis.extra.numpy import arrays

from repro.core.distance import (
    DisjunctiveQuery,
    QueryPoint,
    aggregate_distance,
    disjunctive_distance,
    quadratic_distance,
    quadratic_distance_many,
)
from repro.datasets.uniform import ball_membership, uniform_cube


class TestQuadraticDistance:
    def test_identity_is_squared_euclidean(self):
        assert quadratic_distance(
            np.array([3.0, 4.0]), np.zeros(2), np.eye(2)
        ) == pytest.approx(25.0)

    def test_vectorized_matches_scalar(self, rng):
        points = rng.standard_normal((20, 3))
        center = rng.standard_normal(3)
        raw = rng.standard_normal((5, 3))
        inverse = raw.T @ raw + np.eye(3)
        many = quadratic_distance_many(points, center, inverse)
        for i in range(20):
            assert many[i] == pytest.approx(quadratic_distance(points[i], center, inverse))

    @given(arrays(np.float64, (4, 3), elements=hst.floats(-10, 10)))
    @settings(max_examples=60, deadline=None)
    def test_non_negative_for_psd(self, points):
        distances = quadratic_distance_many(points, np.zeros(3), np.eye(3) * 2.0)
        assert np.all(distances >= 0)


class TestAggregateDistance:
    def test_alpha_one_is_average(self):
        assert aggregate_distance([2.0, 4.0], alpha=1.0) == pytest.approx(3.0)

    def test_negative_alpha_approaches_minimum(self):
        # Strongly negative exponents make the aggregate track the min
        # (the fuzzy-OR behaviour of Equation 4).
        distances = [1.0, 100.0, 100.0]
        assert aggregate_distance(distances, alpha=-50.0) == pytest.approx(
            1.0 * 3.0 ** (1 / 50), rel=1e-3
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            aggregate_distance([], alpha=1.0)
        with pytest.raises(ValueError):
            aggregate_distance([1.0], alpha=0.0)
        with pytest.raises(ValueError):
            aggregate_distance([-1.0], alpha=1.0)

    def test_power_mean_monotone_in_alpha(self):
        distances = [1.0, 2.0, 8.0]
        values = [aggregate_distance(distances, alpha) for alpha in (-5, -2, -1, 1, 2)]
        assert values == sorted(values)


class TestDisjunctiveDistance:
    def test_equation_5_by_hand(self):
        per_cluster = np.array([[1.0], [4.0]])
        weights = [2.0, 2.0]
        # (2+2) / (2/1 + 2/4) = 4 / 2.5 = 1.6
        result = disjunctive_distance(per_cluster, weights)
        assert result[0] == pytest.approx(1.6)

    def test_small_distance_dominates(self):
        near = disjunctive_distance(np.array([[0.01], [100.0]]), [1.0, 1.0])[0]
        far = disjunctive_distance(np.array([[50.0], [100.0]]), [1.0, 1.0])[0]
        assert near < 0.03
        assert far > 30.0

    def test_heavier_cluster_pulls_harder(self):
        distances = np.array([[1.0], [9.0]])
        light_first = disjunctive_distance(distances, [1.0, 9.0])[0]
        heavy_first = disjunctive_distance(distances, [9.0, 1.0])[0]
        # More mass on the *near* cluster -> smaller aggregate distance.
        assert heavy_first < light_first

    def test_zero_distance_is_clamped(self):
        result = disjunctive_distance(np.array([[0.0], [5.0]]), [1.0, 1.0])
        assert np.isfinite(result[0])
        assert result[0] >= 0

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            disjunctive_distance(np.ones((2, 3)), [1.0])
        with pytest.raises(ValueError):
            disjunctive_distance(np.ones((2, 3)), [1.0, 0.0])


class TestDisjunctiveQuery:
    def make_query(self, centers, weight=1.0):
        dim = len(centers[0])
        return DisjunctiveQuery(
            [
                QueryPoint(center=np.asarray(c, dtype=float), inverse=np.eye(dim), weight=weight)
                for c in centers
            ]
        )

    def test_single_point_is_plain_quadratic(self, rng):
        center = rng.standard_normal(3)
        query = self.make_query([center])
        points = rng.standard_normal((10, 3))
        expected = quadratic_distance_many(points, center, np.eye(3))
        np.testing.assert_allclose(query.distances(points), expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            DisjunctiveQuery([])
        with pytest.raises(ValueError):
            DisjunctiveQuery(
                [
                    QueryPoint(np.zeros(2), np.eye(2), 1.0),
                    QueryPoint(np.zeros(3), np.eye(3), 1.0),
                ]
            )
        with pytest.raises(ValueError):
            QueryPoint(np.zeros(2), np.eye(2), 0.0)

    def test_scalar_distance_matches_vector(self, rng):
        query = self.make_query([[0.0, 0.0], [5.0, 5.0]])
        x = rng.standard_normal(2)
        assert query.distance(x) == pytest.approx(query.distances(x[None, :])[0])

    def test_example_3_disjunctive_retrieval(self):
        """Paper Example 3 / Figure 5: two separated balls are retrieved.

        10,000 uniform points in [-2,2]^3; the aggregate distance around
        (-1,-1,-1) and (1,1,1) must retrieve points from *both* balls and
        nothing near the middle of the segment between them.
        """
        rng = np.random.default_rng(42)
        points = uniform_cube(10_000, rng=rng)
        query = self.make_query([[-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]])
        distances = query.distances(points)
        truth = ball_membership(points, [[-1.0] * 3, [1.0] * 3], radius=1.0)
        expected_count = int(truth.sum())
        # Two radius-1 balls occupy 2*(4pi/3)/64 ~ 13.1% of the cube, so
        # ~1309 of 10,000 points are expected.  (The paper quotes 820 for
        # its draw, which is inconsistent with its own stated geometry —
        # see EXPERIMENTS.md; the qualitative point is the two disjoint
        # regions, which we verify below.)
        assert 1150 < expected_count < 1450
        retrieved = np.argsort(distances)[:expected_count]
        # Retrieval by aggregate distance must recover the two balls almost
        # exactly (the harmonic aggregate is not a perfect union-of-balls
        # indicator, but the overlap should be near-total).
        overlap = np.intersect1d(retrieved, np.nonzero(truth)[0]).size
        assert overlap / expected_count > 0.9
        # Both balls are represented.
        near_a = ball_membership(points[retrieved], [[-1.0] * 3], 1.2)
        near_b = ball_membership(points[retrieved], [[1.0] * 3], 1.2)
        assert near_a.sum() > 0.25 * expected_count
        assert near_b.sum() > 0.25 * expected_count

    def test_lower_bound_is_valid(self, rng):
        """The box lower bound must never exceed a true aggregate distance."""
        query = self.make_query([[0.0, 0.0], [3.0, 3.0]], weight=2.0)
        points = rng.uniform(-1.0, 1.0, (50, 2))
        true_distances = query.distances(points)
        # Per-point lower bounds: zero (a box containing each center).
        bound = query.lower_bound_from_center_distance(np.zeros(2))
        assert np.all(bound <= true_distances + 1e-9)

    def test_weights_property(self):
        query = self.make_query([[0.0], [1.0]], weight=3.0)
        np.testing.assert_array_equal(query.weights, [3.0, 3.0])
        assert query.size == 2
        assert query.dimension == 1
