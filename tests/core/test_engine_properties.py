"""Property-based tests of the engine's invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst
from hypothesis.extra.numpy import arrays

from repro.core.config import QclusterConfig
from repro.core.qcluster import QclusterEngine

finite_points = arrays(
    np.float64,
    hst.tuples(hst.integers(min_value=1, max_value=25), hst.just(3)),
    elements=hst.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
)


class TestEngineInvariants:
    @given(finite_points)
    @settings(max_examples=40, deadline=None)
    def test_feedback_never_crashes_and_respects_budget(self, points):
        """Any finite relevant set yields a valid query within budget."""
        engine = QclusterEngine(QclusterConfig(max_clusters=4))
        engine.start(np.zeros(3))
        query = engine.feedback(points)
        assert 1 <= engine.n_clusters <= 4
        assert query.size == engine.n_clusters
        distances = query.distances(np.zeros((5, 3)))
        assert np.all(np.isfinite(distances))
        assert np.all(distances >= 0)

    @given(finite_points)
    @settings(max_examples=40, deadline=None)
    def test_relevance_mass_equals_unique_point_count(self, points):
        """With unit scores, total mass = number of distinct points."""
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        engine.feedback(points)
        unique = {p.tobytes() for p in points}
        assert engine.total_relevance_mass == pytest.approx(len(unique))

    @given(finite_points, finite_points)
    @settings(max_examples=25, deadline=None)
    def test_two_rounds_accumulate(self, first, second):
        """Mass never decreases; cluster count stays within budget."""
        engine = QclusterEngine(QclusterConfig(max_clusters=5))
        engine.start(np.zeros(3))
        engine.feedback(first)
        mass_after_first = engine.total_relevance_mass
        engine.feedback(second)
        assert engine.total_relevance_mass >= mass_after_first - 1e-9
        assert engine.n_clusters <= 5

    @given(
        finite_points,
        hst.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_uniform_score_scaling_preserves_grand_centroid(self, points, scale):
        """Scaling all scores uniformly cannot move the grand centroid.

        Individual clusterings MAY differ — relevance mass feeds the
        merge test's degrees of freedom, so more mass means more test
        power (Equation 16) — but the mass-weighted mean over all
        clusters is the weighted mean of all absorbed points, invariant
        to a uniform score scale.
        """

        def grand_centroid(engine):
            total = sum(c.weight for c in engine.clusters)
            return sum(c.weight * c.centroid for c in engine.clusters) / total

        base = QclusterEngine()
        base.start(np.zeros(3))
        base.feedback(points)
        scaled = QclusterEngine()
        scaled.start(np.zeros(3))
        scaled.feedback(points, scores=np.full(points.shape[0], scale))
        np.testing.assert_allclose(
            grand_centroid(base), grand_centroid(scaled), atol=1e-6
        )


class TestFailureInjection:
    def test_nan_points_rejected(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        bad = rng.standard_normal((4, 3))
        bad[1, 2] = np.nan
        with pytest.raises(ValueError, match="finite"):
            engine.feedback(bad)

    def test_inf_points_rejected(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        bad = rng.standard_normal((4, 3))
        bad[0, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            engine.feedback(bad)

    def test_engine_state_intact_after_rejected_feedback(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        engine.feedback(rng.standard_normal((10, 3)))
        clusters_before = engine.n_clusters
        bad = np.full((2, 3), np.nan)
        with pytest.raises(ValueError):
            engine.feedback(bad)
        assert engine.n_clusters == clusters_before

    def test_dimension_mismatch_between_rounds(self, rng):
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        engine.feedback(rng.standard_normal((5, 3)))
        with pytest.raises(ValueError):
            engine.feedback(rng.standard_normal((5, 4)))

    def test_all_identical_points(self):
        """Zero-variance relevant set: regularization keeps things finite."""
        engine = QclusterEngine()
        engine.start(np.zeros(3))
        query = engine.feedback(np.ones((8, 3)) * 2.5)
        distances = query.distances(np.array([[2.5, 2.5, 2.5], [0.0, 0.0, 0.0]]))
        assert np.all(np.isfinite(distances))
        assert distances[0] < distances[1]
