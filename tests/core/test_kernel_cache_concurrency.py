"""KernelCache under contention: no lost entries, no double compiles.

The cache is shared process-wide across shards, sessions and service
instances, so every operation may race.  These tests hammer the map
from many threads and pin the three guarantees the service relies on:
entries are never lost, the hit/miss counters stay consistent with the
number of calls, and ``get_or_create`` invokes its factory at most
once per fingerprint no matter how many threads miss simultaneously.
"""

from __future__ import annotations

import threading
from collections import Counter

import numpy as np

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.core.kernels import KernelCache, compile_query, ensure_compiled

N_THREADS = 8


def run_threads(worker, n_threads=N_THREADS):
    barrier = threading.Barrier(n_threads)
    errors = []

    def wrapped(thread_id):
        barrier.wait()  # maximise contention: everyone starts together
        try:
            worker(thread_id)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


def simple_query(seed: int) -> DisjunctiveQuery:
    rng = np.random.default_rng(seed)
    return DisjunctiveQuery(
        [
            QueryPoint(
                center=rng.standard_normal(8),
                inverse=np.diag(rng.uniform(0.5, 2.0, size=8)),
                weight=1.0,
                diagonal=True,
            )
        ]
    )


class TestNoLostEntries:
    def test_concurrent_puts_all_land(self):
        cache = KernelCache(capacity=4096)
        per_thread = 64

        def worker(thread_id):
            for i in range(per_thread):
                cache.put(f"fp-{thread_id}-{i}", object())

        run_threads(worker)
        assert len(cache) == N_THREADS * per_thread
        for thread_id in range(N_THREADS):
            for i in range(per_thread):
                assert cache.get(f"fp-{thread_id}-{i}") is not None

    def test_eviction_respects_capacity_under_contention(self):
        cache = KernelCache(capacity=16)

        def worker(thread_id):
            for i in range(200):
                cache.put(f"fp-{thread_id}-{i}", object())
                cache.get(f"fp-{thread_id}-{i % 7}")

        run_threads(worker)
        assert len(cache) <= 16
        # The most recent insertions survived the LRU churn.
        assert len(cache) > 0


class TestCounterConsistency:
    def test_hits_plus_misses_equals_calls(self):
        cache = KernelCache(capacity=256)
        calls_per_thread = 500

        def worker(thread_id):
            rng = np.random.default_rng(thread_id)
            for _ in range(calls_per_thread):
                key = f"fp-{rng.integers(0, 32)}"
                if cache.get(key) is None:
                    cache.put(key, object())

        run_threads(worker)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == N_THREADS * calls_per_thread
        assert stats["hits"] > 0 and stats["misses"] > 0

    def test_get_or_create_emits_exactly_one_event_per_call(self):
        cache = KernelCache(capacity=256)
        events = Counter()
        events_lock = threading.Lock()
        calls_per_thread = 300

        def on_event(kind):
            with events_lock:
                events[kind] += 1

        def worker(thread_id):
            rng = np.random.default_rng(100 + thread_id)
            for _ in range(calls_per_thread):
                key = f"fp-{rng.integers(0, 16)}"
                assert (
                    cache.get_or_create(key, object, on_event=on_event)
                    is not None
                )

        run_threads(worker)
        total = N_THREADS * calls_per_thread
        assert events["hits"] + events["misses"] == total
        assert cache.hits + cache.misses == total


class TestSingleCompilation:
    def test_racing_threads_compile_each_fingerprint_once(self):
        cache = KernelCache(capacity=256)
        factory_calls = Counter()
        factory_lock = threading.Lock()
        fingerprints = [f"fp-{i}" for i in range(4)]
        winners = {}

        def factory_for(key):
            def factory():
                with factory_lock:
                    factory_calls[key] += 1
                return object()

            return factory

        def worker(thread_id):
            for _ in range(50):
                for key in fingerprints:
                    compiled = cache.get_or_create(key, factory_for(key))
                    previous = winners.setdefault(key, compiled)
                    # Every thread observes the same published object.
                    assert compiled is previous

        run_threads(worker)
        for key in fingerprints:
            assert factory_calls[key] == 1

    def test_capacity_zero_compiles_every_time_and_stores_nothing(self):
        cache = KernelCache(capacity=0)
        factory_calls = Counter()
        factory_lock = threading.Lock()

        def factory():
            with factory_lock:
                factory_calls["fp"] += 1
            return object()

        def worker(thread_id):
            for _ in range(20):
                assert cache.get_or_create("fp", factory) is not None

        run_threads(worker)
        assert factory_calls["fp"] == N_THREADS * 20
        assert len(cache) == 0

    def test_ensure_compiled_shares_one_kernel_across_threads(self):
        cache = KernelCache(capacity=64)
        results = [None] * N_THREADS

        def worker(thread_id):
            # One fresh query object per thread, identical cluster
            # state: the fingerprint collides and only one compile runs.
            query = simple_query(seed=7)
            results[thread_id] = ensure_compiled(query, cache=cache)

        run_threads(worker)
        first = results[0]
        assert all(compiled is first for compiled in results)
        assert cache.stats()["entries"] == 1

    def test_compiled_queries_survive_round_trip(self):
        cache = KernelCache(capacity=8)
        query = simple_query(seed=11)
        compiled = compile_query(query)
        cache.put("fp", compiled)
        assert cache.get("fp") is compiled
