"""Shared fixtures for the Qcluster reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_collection
from repro.features import color_pipeline
from repro.retrieval import FeatureDatabase


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests must not depend on global seeding."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_collection():
    """A small procedural image collection shared across feature tests."""
    return generate_collection(
        n_categories=5, images_per_category=20, image_size=16, complex_fraction=0.4, seed=7
    )


@pytest.fixture(scope="session")
def color_database(small_collection) -> FeatureDatabase:
    """Color-moment features of the small collection, as a database."""
    pipeline = color_pipeline()
    features = pipeline.fit(small_collection.images)
    return FeatureDatabase(features, small_collection.labels)


@pytest.fixture
def two_blob_data(rng):
    """Two well-separated Gaussian blobs in 4-d, with labels."""
    a = rng.normal(loc=-3.0, scale=0.5, size=(40, 4))
    b = rng.normal(loc=3.0, scale=0.5, size=(40, 4))
    points = np.vstack([a, b])
    labels = np.array([0] * 40 + [1] * 40)
    return points, labels
