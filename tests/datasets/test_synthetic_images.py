"""Procedural image collection (the Corel/Mantan surrogate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic_images import (
    CategorySpec,
    ModeSpec,
    generate_collection,
    render_mode_image,
)
from repro.features.color_moments import color_moments


class TestModeSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ModeSpec(hue=0.5, saturation=0.5, value=0.5, texture="banana")
        with pytest.raises(ValueError):
            ModeSpec(hue=0.5, saturation=2.0, value=0.5, texture="flat")

    def test_category_requires_modes(self):
        with pytest.raises(ValueError):
            CategorySpec(category_id=0, modes=())

    def test_is_complex(self):
        mode = ModeSpec(hue=0.2, saturation=0.5, value=0.5, texture="flat")
        assert not CategorySpec(0, (mode,)).is_complex
        assert CategorySpec(0, (mode, mode)).is_complex


class TestRenderModeImage:
    @pytest.mark.parametrize(
        "texture", ["flat", "stripes_h", "stripes_v", "stripes_d", "checker", "blobs", "radial"]
    )
    def test_all_textures_render(self, texture, rng):
        mode = ModeSpec(hue=0.3, saturation=0.7, value=0.6, texture=texture)
        image = render_mode_image(mode, size=16, rng=rng, label=2)
        assert image.pixels.shape == (16, 16, 3)
        assert image.label == 2

    def test_hue_controls_color(self, rng):
        red_mode = ModeSpec(hue=0.0, saturation=0.9, value=0.7, texture="flat", noise=0.0)
        blue_mode = ModeSpec(hue=2.0 / 3.0, saturation=0.9, value=0.7, texture="flat", noise=0.0)
        red = render_mode_image(red_mode, 16, rng).pixels.astype(float).mean(axis=(0, 1))
        blue = render_mode_image(blue_mode, 16, rng).pixels.astype(float).mean(axis=(0, 1))
        assert red[0] > red[2]
        assert blue[2] > blue[0]

    def test_same_mode_images_are_feature_close(self, rng):
        mode = ModeSpec(hue=0.4, saturation=0.6, value=0.5, texture="stripes_h")
        other = ModeSpec(hue=0.9, saturation=0.9, value=0.8, texture="checker")
        same = [render_mode_image(mode, 16, rng) for _ in range(6)]
        different = render_mode_image(other, 16, rng)
        descriptors = np.stack([color_moments(img) for img in same])
        centroid = descriptors.mean(axis=0)
        intra = np.linalg.norm(descriptors - centroid, axis=1).mean()
        inter = float(np.linalg.norm(color_moments(different) - centroid))
        assert inter > 2.0 * intra


class TestGenerateCollection:
    def test_sizes_and_labels(self):
        collection = generate_collection(4, 10, image_size=12, seed=3)
        assert len(collection) == 40
        np.testing.assert_array_equal(np.bincount(collection.labels), [10] * 4)

    def test_deterministic_given_seed(self):
        a = generate_collection(2, 4, image_size=10, seed=9)
        b = generate_collection(2, 4, image_size=10, seed=9)
        for img_a, img_b in zip(a.images, b.images):
            np.testing.assert_array_equal(img_a.pixels, img_b.pixels)

    def test_different_seeds_differ(self):
        a = generate_collection(2, 4, image_size=10, seed=1)
        b = generate_collection(2, 4, image_size=10, seed=2)
        assert any(
            not np.array_equal(x.pixels, y.pixels) for x, y in zip(a.images, b.images)
        )

    def test_complex_fraction(self):
        collection = generate_collection(10, 4, image_size=8, complex_fraction=0.3, seed=0)
        complex_count = sum(spec.is_complex for spec in collection.categories)
        assert complex_count == 3

    def test_complex_categories_have_two_modes_in_data(self):
        collection = generate_collection(4, 10, image_size=8, complex_fraction=0.5, seed=5)
        for spec in collection.categories:
            member_modes = collection.modes[collection.labels == spec.category_id]
            if spec.is_complex:
                assert set(member_modes) == {0, 1}
            else:
                assert set(member_modes) == {0}

    def test_indices_of(self):
        collection = generate_collection(3, 5, image_size=8, seed=1)
        indices = collection.indices_of(1)
        assert list(indices) == list(range(5, 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_collection(0, 10)
        with pytest.raises(ValueError):
            generate_collection(2, 0)
        with pytest.raises(ValueError):
            generate_collection(2, 2, complex_fraction=1.5)
