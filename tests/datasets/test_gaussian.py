"""Synthetic Gaussian generators for the paper's Section 5 experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.gaussian import (
    cluster_pair,
    elliptical_clusters,
    random_linear_map,
    simplex_centers,
    spherical_clusters,
)


class TestSimplexCenters:
    @pytest.mark.parametrize("n_clusters", [2, 3, 4])
    def test_pairwise_distances_equal_separation(self, n_clusters):
        centers = simplex_centers(n_clusters, dim=16, separation=2.5)
        for i in range(n_clusters):
            for j in range(i + 1, n_clusters):
                distance = float(np.linalg.norm(centers[i] - centers[j]))
                assert distance == pytest.approx(2.5, rel=1e-9)

    def test_full_simplex_in_low_dimension(self):
        # dim + 1 vertices: the regular simplex needs the extra vertex.
        centers = simplex_centers(4, dim=3, separation=1.0)
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.linalg.norm(centers[i] - centers[j]) == pytest.approx(1.0)

    def test_centered_at_origin(self):
        centers = simplex_centers(3, dim=8, separation=1.7)
        np.testing.assert_allclose(centers.mean(axis=0), np.zeros(8), atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            simplex_centers(5, dim=3, separation=1.0)
        with pytest.raises(ValueError):
            simplex_centers(0, dim=3, separation=1.0)
        with pytest.raises(ValueError):
            simplex_centers(2, dim=3, separation=-1.0)


class TestSphericalClusters:
    def test_shapes_and_labels(self, rng):
        sample = spherical_clusters(3, 16, 1.5, 30, rng)
        assert sample.points.shape == (90, 16)
        assert sample.labels.shape == (90,)
        assert sample.centers.shape == (3, 16)
        assert sample.transform is None

    def test_cluster_means_near_centers(self, rng):
        sample = spherical_clusters(3, 8, 5.0, 500, rng)
        for label in range(3):
            members = sample.points[sample.labels == label]
            np.testing.assert_allclose(
                members.mean(axis=0), sample.centers[label], atol=0.2
            )

    def test_unit_covariance(self, rng):
        sample = spherical_clusters(1, 6, 0.0, 5000, rng)
        covariance = np.cov(sample.points, rowvar=False)
        np.testing.assert_allclose(covariance, np.eye(6), atol=0.15)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            spherical_clusters(3, 16, 1.0, 0, rng)


class TestEllipticalClusters:
    def test_covariance_is_aat(self, rng):
        sample = elliptical_clusters(1, 4, 0.0, 8000, rng)
        covariance = np.cov(sample.points, rowvar=False)
        expected = sample.transform @ sample.transform.T
        scale = float(np.abs(expected).max())
        np.testing.assert_allclose(covariance, expected, atol=0.08 * scale)

    def test_labels_preserved(self, rng):
        sample = elliptical_clusters(3, 8, 2.0, 20, rng)
        assert sample.points.shape == (60, 8)
        np.testing.assert_array_equal(np.bincount(sample.labels), [20, 20, 20])

    def test_transform_is_well_conditioned(self, rng):
        transform = random_linear_map(10, rng, condition_number=4.0)
        singular_values = np.linalg.svd(transform, compute_uv=False)
        assert singular_values.max() / singular_values.min() == pytest.approx(4.0, rel=1e-6)

    def test_condition_number_validation(self, rng):
        with pytest.raises(ValueError):
            random_linear_map(4, rng, condition_number=0.5)


class TestClusterPair:
    def test_same_mean_pair(self, rng):
        a, b = cluster_pair(same_mean=True, size=500, dim=8, rng=rng)
        assert a.shape == b.shape == (500, 8)
        assert np.linalg.norm(a.mean(0) - b.mean(0)) < 0.3

    def test_different_mean_pair(self, rng):
        a, b = cluster_pair(same_mean=False, size=500, dim=8, separation=3.0, rng=rng)
        assert np.linalg.norm(a.mean(0) - b.mean(0)) == pytest.approx(3.0, abs=0.3)

    def test_elliptical_pair_shares_transform(self, rng):
        a, b = cluster_pair(same_mean=True, size=2000, dim=4, rng=rng, elliptical=True)
        cov_a = np.cov(a, rowvar=False)
        cov_b = np.cov(b, rowvar=False)
        scale = float(np.abs(cov_a).max())
        np.testing.assert_allclose(cov_a, cov_b, atol=0.15 * scale)

    def test_size_validation(self, rng):
        with pytest.raises(ValueError):
            cluster_pair(same_mean=True, size=1, rng=rng)
