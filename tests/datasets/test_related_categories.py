"""Related-category generation and the graded-relevance protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_collection
from repro.features import color_pipeline
from repro.retrieval import FeatureDatabase, SimulatedUser


@pytest.fixture(scope="module")
def related_collection():
    return generate_collection(
        n_categories=8,
        images_per_category=15,
        image_size=14,
        complex_fraction=0.25,
        related_pairs=2,
        seed=13,
    )


class TestGeneration:
    def test_related_map_is_symmetric(self, related_collection):
        related = related_collection.related
        assert len(related) == 4  # 2 pairs -> 4 categories involved
        for category, partners in related.items():
            for partner in partners:
                assert category in related[partner]

    def test_related_categories_are_feature_close(self, related_collection):
        features = color_pipeline().fit(related_collection.images)
        labels = related_collection.labels

        def centroid(category):
            return features[labels == category].mean(axis=0)

        related = related_collection.related
        related_distances = []
        for a, partners in related.items():
            for b in partners:
                if a < b:
                    related_distances.append(
                        float(np.linalg.norm(centroid(a) - centroid(b)))
                    )
        unrelated_distances = []
        categories = sorted({int(c) for c in labels})
        for a in categories:
            for b in categories:
                if a < b and b not in related.get(a, set()):
                    unrelated_distances.append(
                        float(np.linalg.norm(centroid(a) - centroid(b)))
                    )
        assert np.mean(related_distances) < np.mean(unrelated_distances)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_collection(n_categories=4, images_per_category=2, related_pairs=-1)
        with pytest.raises(ValueError):
            # 3 pairs need 6 simple categories; only 4 exist.
            generate_collection(
                n_categories=4, images_per_category=2, complex_fraction=0.0,
                related_pairs=3,
            )

    def test_zero_pairs_default(self):
        collection = generate_collection(n_categories=3, images_per_category=2)
        assert collection.related == {}


class TestGradedRelevanceProtocol:
    def test_user_scores_related_lower(self, related_collection):
        features = color_pipeline().fit(related_collection.images)
        database = FeatureDatabase(
            features, related_collection.labels, related=related_collection.related
        )
        related = related_collection.related
        target = next(iter(related))
        partner = next(iter(related[target]))
        user = SimulatedUser(
            database, target, same_category_score=1.0, related_category_score=0.5
        )
        target_member = int(np.nonzero(related_collection.labels == target)[0][0])
        partner_member = int(np.nonzero(related_collection.labels == partner)[0][0])
        judgment = user.judge([target_member, partner_member])
        np.testing.assert_array_equal(judgment.scores, [1.0, 0.5])

    def test_recall_denominator_includes_related(self, related_collection):
        features = color_pipeline().fit(related_collection.images)
        database = FeatureDatabase(
            features, related_collection.labels, related=related_collection.related
        )
        target = next(iter(related_collection.related))
        user = SimulatedUser(database, target)
        _, total = user.relevance_mask([0])
        assert total == 30  # own 15 + related partner's 15
