"""The canonical float32 conversion and the scan-ready guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import FEATURE_DTYPE, as_feature_matrix, assert_scan_ready
from repro.datasets.gaussian import spherical_clusters
from repro.retrieval import FeatureDatabase


class TestAsFeatureMatrix:
    def test_float64_converted_once(self, rng):
        source = rng.normal(size=(40, 5))
        matrix = as_feature_matrix(source)
        assert matrix.dtype == FEATURE_DTYPE
        assert matrix.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(matrix, source.astype(FEATURE_DTYPE))

    def test_already_canonical_is_returned_as_is(self, rng):
        source = np.ascontiguousarray(rng.normal(size=(10, 3)), dtype=FEATURE_DTYPE)
        assert as_feature_matrix(source) is source  # zero copies

    def test_fortran_order_is_fixed_up(self, rng):
        source = np.asfortranarray(rng.normal(size=(8, 4)).astype(FEATURE_DTYPE))
        matrix = as_feature_matrix(source)
        assert matrix.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(matrix, source)

    def test_feature_database_source(self, rng):
        vectors = rng.normal(size=(30, 4))
        database = FeatureDatabase(vectors, np.zeros(30, dtype=int))
        np.testing.assert_array_equal(
            as_feature_matrix(database), vectors.astype(FEATURE_DTYPE)
        )

    def test_gaussian_sample_source(self, rng):
        sample = spherical_clusters(n_clusters=2, dim=3, n_per_cluster=10, rng=rng)
        np.testing.assert_array_equal(
            as_feature_matrix(sample),
            np.asarray(sample.points, dtype=FEATURE_DTYPE),
        )

    def test_nested_lists_accepted(self):
        matrix = as_feature_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert matrix.shape == (2, 2)
        assert matrix.dtype == FEATURE_DTYPE

    @pytest.mark.parametrize(
        "bad",
        [
            np.zeros((2, 2, 2)),  # 3-d
            np.zeros((0, 4)),  # no rows
            np.zeros((4, 0)),  # no columns
        ],
        ids=["3d", "no-rows", "no-cols"],
    )
    def test_bad_shapes_rejected(self, bad):
        with pytest.raises(ValueError):
            as_feature_matrix(bad)

    def test_non_finite_rejected(self):
        bad = np.ones((3, 3))
        bad[1, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            as_feature_matrix(bad)
        bad[1, 1] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            as_feature_matrix(bad)

    def test_float32_overflow_rejected(self):
        bad = np.ones((2, 2)) * 1e300  # finite in float64, inf in float32
        with pytest.raises(ValueError, match="float32"):
            as_feature_matrix(bad)


class TestAssertScanReady:
    def test_passes_canonical_and_returns_same_object(self, rng):
        matrix = as_feature_matrix(rng.normal(size=(5, 3)))
        assert assert_scan_ready(matrix) is matrix

    def test_rejects_float64(self, rng):
        with pytest.raises(ValueError, match="re-conversion"):
            assert_scan_ready(rng.normal(size=(5, 3)))

    def test_rejects_non_contiguous(self, rng):
        matrix = as_feature_matrix(rng.normal(size=(6, 4)))
        with pytest.raises(ValueError, match="C-contiguous"):
            assert_scan_ready(matrix[:, ::2])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-d"):
            assert_scan_ready(np.zeros(4, dtype=FEATURE_DTYPE))

    def test_rejects_non_ndarray(self):
        with pytest.raises(TypeError):
            assert_scan_ready([[1.0, 2.0]])

    def test_never_copies(self, rng):
        # Metadata-only check: the data buffer is untouched and shared.
        matrix = as_feature_matrix(rng.normal(size=(5, 3)))
        assert assert_scan_ready(matrix, name="shard 0").base is matrix.base
