"""PPM I/O and the directory collection loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ppm import load_directory_collection, load_ppm, save_ppm
from repro.features.image import Image


@pytest.fixture
def random_image(rng):
    return Image(rng.integers(0, 256, (6, 9, 3), dtype=np.uint8), label=4)


class TestRoundTrip:
    def test_p6_round_trip(self, random_image, tmp_path):
        path = tmp_path / "image.ppm"
        save_ppm(random_image, path)
        loaded = load_ppm(path, label=4)
        np.testing.assert_array_equal(loaded.pixels, random_image.pixels)
        assert loaded.label == 4
        assert loaded.shape == (6, 9)

    def test_save_creates_parents(self, random_image, tmp_path):
        path = tmp_path / "deep" / "nested" / "image.ppm"
        save_ppm(random_image, path)
        assert path.exists()

    def test_p3_ascii(self, tmp_path):
        path = tmp_path / "ascii.ppm"
        path.write_text("P3\n# a comment\n2 1\n255\n255 0 0  0 0 255\n")
        image = load_ppm(path)
        np.testing.assert_array_equal(image.pixels[0, 0], [255, 0, 0])
        np.testing.assert_array_equal(image.pixels[0, 1], [0, 0, 255])

    def test_header_comments_in_p6(self, random_image, tmp_path):
        path = tmp_path / "image.ppm"
        height, width = random_image.shape
        header = f"P6\n# made by a scanner\n{width} {height}\n255\n".encode()
        path.write_bytes(header + random_image.pixels.tobytes())
        loaded = load_ppm(path)
        np.testing.assert_array_equal(loaded.pixels, random_image.pixels)

    def test_sixteen_bit_maxval(self, tmp_path):
        path = tmp_path / "deep.ppm"
        values = np.array([[0, 32768, 65535]], dtype=">u2")  # one RGB pixel
        path.write_bytes(b"P6\n1 1\n65535\n" + values.tobytes())
        image = load_ppm(path)
        np.testing.assert_array_equal(image.pixels[0, 0], [0, 128, 255])

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P5\n1 1\n255\n\x00")
        with pytest.raises(ValueError, match="P6/P3"):
            load_ppm(path)

    def test_rejects_truncated_data(self, tmp_path):
        path = tmp_path / "short.ppm"
        path.write_bytes(b"P6\n4 4\n255\n\x00\x00")
        with pytest.raises(ValueError, match="truncated"):
            load_ppm(path)

    def test_rejects_bad_dimensions(self, tmp_path):
        path = tmp_path / "zero.ppm"
        path.write_bytes(b"P6\n0 4\n255\n")
        with pytest.raises(ValueError, match="dimensions"):
            load_ppm(path)


class TestDirectoryCollection:
    @pytest.fixture
    def image_tree(self, tmp_path, rng):
        for category in ("birds", "cars"):
            for index in range(3):
                image = Image(rng.integers(0, 256, (4, 4, 3), dtype=np.uint8))
                save_ppm(image, tmp_path / category / f"{index}.ppm")
        return tmp_path

    def test_loads_all_with_labels(self, image_tree):
        images, labels, names = load_directory_collection(image_tree)
        assert len(images) == 6
        assert names == ["birds", "cars"]
        np.testing.assert_array_equal(labels, [0, 0, 0, 1, 1, 1])
        assert all(image.label == label for image, label in zip(images, labels))

    def test_usable_with_retrieval_system(self, image_tree):
        from repro import ImageRetrievalSystem

        images, labels, _ = load_directory_collection(image_tree)
        system = ImageRetrievalSystem(images, k=4, use_index=False)
        page = system.query_by_id(0)
        assert len(page) == 4

    def test_rejects_missing_directory(self, tmp_path):
        with pytest.raises(ValueError):
            load_directory_collection(tmp_path / "nope")

    def test_rejects_empty_tree(self, tmp_path):
        with pytest.raises(ValueError):
            load_directory_collection(tmp_path)

    def test_rejects_no_matches(self, image_tree):
        with pytest.raises(ValueError, match="no images"):
            load_directory_collection(image_tree, pattern="*.png")
