"""Uniform cube data for the Example 3 / Figure 5 demo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.uniform import ball_membership, uniform_cube


class TestUniformCube:
    def test_bounds_and_shape(self, rng):
        points = uniform_cube(500, dim=3, rng=rng)
        assert points.shape == (500, 3)
        assert points.min() >= -2.0
        assert points.max() <= 2.0

    def test_custom_range(self, rng):
        points = uniform_cube(100, dim=2, low=0.0, high=1.0, rng=rng)
        assert points.min() >= 0.0
        assert points.max() <= 1.0

    def test_roughly_uniform(self, rng):
        points = uniform_cube(20_000, dim=1, rng=rng)
        # Mean ~ 0, variance ~ (4^2)/12.
        assert abs(points.mean()) < 0.05
        assert points.var() == pytest.approx(16.0 / 12.0, rel=0.05)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_cube(0, rng=rng)
        with pytest.raises(ValueError):
            uniform_cube(10, low=2.0, high=-2.0, rng=rng)


class TestBallMembership:
    def test_single_ball(self):
        points = np.array([[0.0, 0.0], [0.5, 0.0], [2.0, 0.0]])
        mask = ball_membership(points, [[0.0, 0.0]], radius=1.0)
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_union_of_balls(self):
        points = np.array([[0.0, 0.0], [5.0, 0.0], [2.5, 0.0]])
        mask = ball_membership(points, [[0.0, 0.0], [5.0, 0.0]], radius=1.0)
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_example_3_expected_fraction(self, rng):
        """Two radius-1 balls in the [-2,2]^3 cube cover ~13.1% of it."""
        points = uniform_cube(50_000, rng=rng)
        mask = ball_membership(points, [[-1.0] * 3, [1.0] * 3], radius=1.0)
        fraction = mask.mean()
        expected = 2.0 * (4.0 / 3.0) * np.pi / 64.0
        assert fraction == pytest.approx(expected, rel=0.05)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ball_membership(np.zeros((2, 3)), [[0.0] * 3], radius=-1.0)
