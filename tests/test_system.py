"""ImageRetrievalSystem: the full Figure 2 loop behind one facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import QueryPointMovement
from repro.datasets import generate_collection, render_mode_image
from repro.datasets.synthetic_images import ModeSpec
from repro.system import ImageRetrievalSystem


@pytest.fixture(scope="module")
def collection():
    return generate_collection(
        n_categories=5, images_per_category=20, image_size=14,
        complex_fraction=0.4, seed=3,
    )


@pytest.fixture(scope="module")
def system(collection):
    return ImageRetrievalSystem(collection.images, feature="color", k=15)


class TestConstruction:
    def test_vectors_extracted(self, system, collection):
        assert system.size == len(collection)
        assert system.vectors.shape == (len(collection), 3)

    def test_validation(self, collection):
        with pytest.raises(ValueError):
            ImageRetrievalSystem([], feature="color")
        with pytest.raises(ValueError):
            ImageRetrievalSystem(collection.images, feature="banana")
        with pytest.raises(ValueError):
            ImageRetrievalSystem(collection.images, k=0)

    def test_texture_feature(self, collection):
        system = ImageRetrievalSystem(collection.images[:30], feature="texture", k=5)
        assert system.vectors.shape[1] == 4


class TestQueryLoop:
    def test_query_by_id_returns_page(self, system):
        page = system.query_by_id(0)
        assert len(page) == 15
        assert page.iteration == 0
        assert page.ids[0] == 0  # the query image is its own best match
        assert np.all(np.diff(page.distances) >= -1e-12)

    def test_query_by_image_unseen_example(self, system, collection):
        # Render a fresh image of an existing category's mode.
        spec = collection.categories[1]
        example = render_mode_image(spec.modes[0], 14, np.random.default_rng(9))
        page = system.query_by_image(example)
        assert len(page) == 15
        # Most of the first page should come from the right category.
        labels = collection.labels[page.ids]
        assert np.sum(labels == 1) > 5

    def test_feedback_improves_category_purity(self, system, collection):
        page = system.query_by_id(0)
        target = collection.labels[0]

        def purity(result_page):
            return float(np.mean(collection.labels[result_page.ids] == target))

        initial_purity = purity(page)
        for _ in range(3):
            relevant = [i for i in page.ids if collection.labels[i] == target]
            page = system.give_feedback(relevant)
        assert page.iteration == 3
        assert purity(page) >= initial_purity - 0.05

    def test_feedback_requires_session(self, collection):
        system = ImageRetrievalSystem(collection.images[:20], k=5)
        with pytest.raises(RuntimeError):
            system.give_feedback([1, 2])
        with pytest.raises(RuntimeError):
            system.iteration

    def test_feedback_id_validation(self, system):
        system.query_by_id(0)
        with pytest.raises(IndexError):
            system.give_feedback([10_000])

    def test_empty_feedback_keeps_page_valid(self, system):
        system.query_by_id(0)
        page = system.give_feedback([])
        assert len(page) == 15
        assert page.iteration == 1

    def test_end_session(self, system):
        system.query_by_id(0)
        system.end_session()
        with pytest.raises(RuntimeError):
            system.give_feedback([0])

    def test_query_by_id_out_of_range(self, system):
        with pytest.raises(IndexError):
            system.query_by_id(10_000)


class TestInterchangeableMethods:
    def test_baseline_method_plugs_in(self, collection):
        system = ImageRetrievalSystem(
            collection.images, method_factory=QueryPointMovement, k=10,
        )
        page = system.query_by_id(0)
        page = system.give_feedback(list(page.ids[:5]))
        assert len(page) == 10


class TestIndexVsScan:
    def test_identical_rankings(self, collection):
        indexed = ImageRetrievalSystem(collection.images, k=12, use_index=True)
        scanned = ImageRetrievalSystem(collection.images, k=12, use_index=False)
        page_indexed = indexed.query_by_id(3)
        page_scanned = scanned.query_by_id(3)
        np.testing.assert_allclose(
            np.sort(page_indexed.distances), np.sort(page_scanned.distances), atol=1e-9
        )
