"""Extra feature pipelines (histogram, wavelet) and feature combination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.pipeline import (
    combine_features,
    histogram_pipeline,
    wavelet_pipeline,
)
from repro.retrieval import FeatureDatabase, FeedbackSession, QclusterMethod


class TestExtraPipelines:
    def test_histogram_pipeline_dimensions(self, small_collection):
        pipeline = histogram_pipeline(n_components=8)
        features = pipeline.fit(small_collection.images[:40])
        assert features.shape == (40, 8)

    def test_wavelet_pipeline_dimensions(self, small_collection):
        pipeline = wavelet_pipeline(n_components=4, levels=2)
        features = pipeline.fit(small_collection.images[:40])
        assert features.shape == (40, 4)

    def test_histogram_features_separate_categories(self, small_collection):
        pipeline = histogram_pipeline(n_components=8)
        features = pipeline.fit(small_collection.images)
        labels = small_collection.labels
        rng = np.random.default_rng(0)
        intra, inter = [], []
        for _ in range(300):
            i, j = rng.integers(0, len(labels), 2)
            distance = float(np.sum((features[i] - features[j]) ** 2))
            (intra if labels[i] == labels[j] else inter).append(distance)
        assert np.mean(intra) < np.mean(inter)

    def test_wavelet_features_usable_for_retrieval(self, small_collection):
        pipeline = wavelet_pipeline(n_components=3, levels=2)
        features = pipeline.fit(small_collection.images)
        database = FeatureDatabase(features, small_collection.labels)
        session = FeedbackSession(database, QclusterMethod(), k=20)
        result = session.run(0, n_iterations=2)
        assert len(result.records) == 3
        assert result.recalls[-1] >= result.recalls[0] - 0.1


class TestCombineFeatures:
    def test_concatenates_columns(self, rng):
        a = rng.standard_normal((10, 3))
        b = rng.standard_normal((10, 4))
        combined = combine_features(a, b)
        assert combined.shape == (10, 7)

    def test_blocks_are_scale_balanced(self, rng):
        small_scale = rng.standard_normal((20, 3)) * 0.001
        large_scale = rng.standard_normal((20, 3)) * 1000.0
        combined = combine_features(small_scale, large_scale)
        norm_first = np.linalg.norm(combined[:, :3], axis=1).mean()
        norm_second = np.linalg.norm(combined[:, 3:], axis=1).mean()
        assert norm_first == pytest.approx(norm_second, rel=1e-9)

    def test_zero_block_passes_through(self):
        zero = np.zeros((5, 2))
        other = np.ones((5, 2))
        combined = combine_features(zero, other)
        np.testing.assert_array_equal(combined[:, :2], zero)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            combine_features()
        with pytest.raises(ValueError):
            combine_features(rng.standard_normal((5, 2)), rng.standard_normal((6, 2)))

    def test_combined_features_retrieval_quality(self, small_collection, color_database):
        """Color + histogram combined at least matches color alone."""
        from repro.features.pipeline import color_pipeline

        color = color_pipeline().fit(small_collection.images)
        histogram = histogram_pipeline(n_components=6).fit(small_collection.images)
        combined = FeatureDatabase(
            combine_features(color, histogram), small_collection.labels
        )
        session_combined = FeedbackSession(combined, QclusterMethod(), k=20)
        session_color = FeedbackSession(color_database, QclusterMethod(), k=20)
        recall_combined = session_combined.run(0, n_iterations=2).recalls[-1]
        recall_color = session_color.run(0, n_iterations=2).recalls[-1]
        assert recall_combined >= recall_color - 0.15
