"""Image carrier and gray conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.image import Image, to_gray


class TestImage:
    def test_uint8_passthrough(self, rng):
        pixels = rng.integers(0, 256, (8, 6, 3), dtype=np.uint8)
        image = Image(pixels)
        assert image.pixels.dtype == np.uint8
        assert image.shape == (8, 6)

    def test_float_pixels_are_scaled(self):
        image = Image(np.full((2, 2, 3), 0.5))
        assert image.pixels.dtype == np.uint8
        assert int(image.pixels[0, 0, 0]) in (127, 128)

    def test_float_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Image(np.full((2, 2, 3), 1.5))

    def test_integer_pixels_are_clipped(self):
        image = Image(np.full((2, 2, 3), 300, dtype=np.int64))
        assert image.pixels.max() == 255

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Image(rng.integers(0, 255, (4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            Image(rng.integers(0, 255, (4, 4, 4), dtype=np.uint8))

    def test_as_float_range(self, rng):
        image = Image(rng.integers(0, 256, (4, 4, 3), dtype=np.uint8))
        as_float = image.as_float
        assert as_float.min() >= 0.0
        assert as_float.max() <= 1.0

    def test_label_attached(self):
        image = Image(np.zeros((2, 2, 3), dtype=np.uint8), label=7)
        assert image.label == 7


class TestToGray:
    def test_white_is_255(self):
        gray = to_gray(np.full((2, 2, 3), 255.0))
        np.testing.assert_allclose(gray, 255.0)

    def test_luma_weights(self):
        pure_green = np.zeros((1, 1, 3))
        pure_green[..., 1] = 100.0
        assert to_gray(pure_green)[0, 0] == pytest.approx(58.7)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            to_gray(np.zeros((4, 4)))
