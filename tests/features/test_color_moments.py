"""HSV color-moment extraction (the paper's color feature)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.color_moments import COLOR_MOMENT_NAMES, color_moments
from repro.features.image import Image


class TestColorMoments:
    def test_output_dimension(self, rng):
        image = Image(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        descriptor = color_moments(image)
        assert descriptor.shape == (9,)
        assert len(COLOR_MOMENT_NAMES) == 9

    def test_flat_image_has_zero_spread(self):
        # A constant-color image: std and skewness vanish for all channels.
        pixels = np.full((8, 8, 3), 0.25)
        descriptor = color_moments(Image(pixels))
        stds = descriptor[1::3]
        skews = descriptor[2::3]
        np.testing.assert_allclose(stds, 0.0, atol=1e-9)
        np.testing.assert_allclose(skews, 0.0, atol=1e-9)

    def test_value_mean_of_flat_gray(self):
        pixels = np.full((4, 4, 3), 0.5)
        descriptor = color_moments(Image(pixels))
        # V channel mean (index 6) equals the gray level.
        assert descriptor[6] == pytest.approx(0.5, abs=0.01)
        # Saturation of gray is zero.
        assert descriptor[3] == pytest.approx(0.0, abs=1e-9)

    def test_skewness_sign(self):
        # Mostly dark with a few bright pixels -> positive V skewness.
        pixels = np.zeros((10, 10, 3))
        pixels[0, :3] = 1.0
        descriptor = color_moments(Image(pixels))
        assert descriptor[8] > 0.0

    def test_symmetric_distribution_has_no_skew(self):
        pixels = np.zeros((2, 2, 3))
        pixels[0, :, :] = 0.25
        pixels[1, :, :] = 0.75
        descriptor = color_moments(Image(pixels))
        assert descriptor[8] == pytest.approx(0.0, abs=1e-6)

    def test_brightness_shift_moves_value_mean_only_slightly_changes_hue(self, rng):
        base = rng.uniform(0.2, 0.5, (8, 8, 3))
        dark = color_moments(Image(base))
        bright = color_moments(Image(np.clip(base + 0.3, 0.0, 1.0)))
        assert bright[6] > dark[6]  # V mean up

    def test_deterministic(self, rng):
        image = Image(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        np.testing.assert_array_equal(color_moments(image), color_moments(image))
