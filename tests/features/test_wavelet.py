"""Haar wavelet decomposition and subband-energy features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.image import Image
from repro.features.wavelet import haar_decompose_2d, wavelet_features


class TestHaarDecompose:
    def test_shapes_halve_per_level(self, rng):
        gray = rng.uniform(0.0, 1.0, (32, 32))
        approximation, details = haar_decompose_2d(gray, levels=3)
        assert approximation.shape == (4, 4)
        assert details[0][0].shape == (16, 16)
        assert details[1][0].shape == (8, 8)
        assert details[2][0].shape == (4, 4)

    def test_energy_conservation(self, rng):
        """Orthonormal Haar preserves total energy (Parseval)."""
        gray = rng.uniform(0.0, 1.0, (16, 16))
        approximation, details = haar_decompose_2d(gray, levels=2)
        energy = float(np.sum(approximation**2))
        for triple in details:
            for band in triple:
                energy += float(np.sum(band**2))
        assert energy == pytest.approx(float(np.sum(gray**2)), rel=1e-9)

    def test_constant_image_has_zero_details(self):
        gray = np.full((8, 8), 3.0)
        approximation, details = haar_decompose_2d(gray, levels=2)
        for triple in details:
            for band in triple:
                np.testing.assert_allclose(band, 0.0, atol=1e-12)
        # All energy in the approximation: 3 * 2^levels per coefficient.
        np.testing.assert_allclose(approximation, 12.0)

    def test_horizontal_stripes_excite_horizontal_band(self):
        gray = np.zeros((16, 16))
        gray[::2, :] = 1.0  # variation along rows (vertical frequency)
        _, details = haar_decompose_2d(gray, levels=1)
        horizontal, vertical, diagonal = details[0]
        # Variation across rows lands in the row-detail band.
        assert np.abs(vertical).sum() + np.abs(diagonal).sum() < 1e-9 or (
            np.abs(horizontal).sum() != np.abs(vertical).sum()
        )
        # Exactly one of the two directional bands carries the energy.
        energies = [float(np.abs(band).sum()) for band in (horizontal, vertical)]
        assert max(energies) > 0
        assert min(energies) == pytest.approx(0.0, abs=1e-9)

    def test_odd_sizes_are_padded(self, rng):
        gray = rng.uniform(0.0, 1.0, (15, 17))
        approximation, details = haar_decompose_2d(gray, levels=2)
        assert approximation.size > 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            haar_decompose_2d(rng.uniform(0, 1, (8, 8, 3)))
        with pytest.raises(ValueError):
            haar_decompose_2d(rng.uniform(0, 1, (8, 8)), levels=0)
        with pytest.raises(ValueError):
            haar_decompose_2d(rng.uniform(0, 1, (4, 4)), levels=5)


class TestWaveletFeatures:
    def test_dimension(self, rng):
        image = Image(rng.integers(0, 256, (32, 32, 3), dtype=np.uint8))
        descriptor = wavelet_features(image, levels=3)
        assert descriptor.shape == (18,)
        without_std = wavelet_features(image, levels=3, include_std=False)
        assert without_std.shape == (9,)

    def test_flat_image_is_zero(self):
        image = Image(np.full((16, 16, 3), 0.5))
        np.testing.assert_allclose(wavelet_features(image, levels=2), 0.0, atol=1e-9)

    def test_textured_beats_flat(self, rng):
        textured = Image(rng.uniform(0.0, 1.0, (16, 16, 3)))
        flat = Image(np.full((16, 16, 3), 0.5))
        assert wavelet_features(textured, levels=2).sum() > 0.1
        assert wavelet_features(flat, levels=2).sum() == pytest.approx(0.0, abs=1e-9)

    def test_directional_sensitivity(self):
        stripes_h = np.zeros((16, 16, 3))
        stripes_h[::2, :, :] = 1.0
        stripes_v = np.transpose(stripes_h, (1, 0, 2))
        features_h = wavelet_features(Image(stripes_h), levels=1, include_std=False)
        features_v = wavelet_features(Image(stripes_v), levels=1, include_std=False)
        # The two orientations swap the (horizontal, vertical) bands.
        np.testing.assert_allclose(features_h[0], features_v[1], rtol=1e-9)
        np.testing.assert_allclose(features_h[1], features_v[0], rtol=1e-9)
