"""RGB <-> HSV conversion."""

from __future__ import annotations

import colorsys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.features.hsv import hsv_to_rgb, rgb_to_hsv


KNOWN_COLORS = [
    # (rgb, hsv) in [0, 1]
    ((1.0, 0.0, 0.0), (0.0, 1.0, 1.0)),          # red
    ((0.0, 1.0, 0.0), (1.0 / 3.0, 1.0, 1.0)),    # green
    ((0.0, 0.0, 1.0), (2.0 / 3.0, 1.0, 1.0)),    # blue
    ((1.0, 1.0, 1.0), (0.0, 0.0, 1.0)),          # white
    ((0.0, 0.0, 0.0), (0.0, 0.0, 0.0)),          # black
    ((0.5, 0.5, 0.5), (0.0, 0.0, 0.5)),          # gray
    ((1.0, 1.0, 0.0), (1.0 / 6.0, 1.0, 1.0)),    # yellow
]


class TestRgbToHsv:
    @pytest.mark.parametrize("rgb,hsv", KNOWN_COLORS)
    def test_known_colors(self, rgb, hsv):
        np.testing.assert_allclose(rgb_to_hsv(np.array(rgb)), hsv, atol=1e-12)

    def test_matches_colorsys(self, rng):
        for rgb in rng.uniform(0.0, 1.0, (50, 3)):
            expected = colorsys.rgb_to_hsv(*rgb)
            np.testing.assert_allclose(rgb_to_hsv(rgb), expected, atol=1e-12)

    def test_vectorized_over_images(self, rng):
        image = rng.uniform(0.0, 1.0, (4, 5, 3))
        hsv = rgb_to_hsv(image)
        assert hsv.shape == (4, 5, 3)
        np.testing.assert_allclose(hsv[2, 3], rgb_to_hsv(image[2, 3]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            rgb_to_hsv(np.array([1.5, 0.0, 0.0]))
        with pytest.raises(ValueError):
            rgb_to_hsv(np.array([1.0, 0.0]))


class TestHsvToRgb:
    @pytest.mark.parametrize("rgb,hsv", KNOWN_COLORS)
    def test_known_colors(self, rgb, hsv):
        np.testing.assert_allclose(hsv_to_rgb(np.array(hsv)), rgb, atol=1e-12)

    @given(
        hst.floats(min_value=0.0, max_value=1.0),
        hst.floats(min_value=0.0, max_value=1.0),
        hst.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_rgb(self, r, g, b):
        rgb = np.array([r, g, b])
        recovered = hsv_to_rgb(rgb_to_hsv(rgb))
        np.testing.assert_allclose(recovered, rgb, atol=1e-9)

    def test_matches_colorsys(self, rng):
        for hsv in rng.uniform(0.0, 1.0, (50, 3)):
            expected = colorsys.hsv_to_rgb(*hsv)
            np.testing.assert_allclose(hsv_to_rgb(hsv), expected, atol=1e-12)

    def test_rejects_bad_saturation(self):
        with pytest.raises(ValueError):
            hsv_to_rgb(np.array([0.5, 2.0, 0.5]))
