"""Gray-level co-occurrence matrix and the 16 texture descriptors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.glcm import (
    TEXTURE_FEATURE_NAMES,
    cooccurrence_matrix,
    quantize_gray,
    texture_features,
)
from repro.features.image import Image


class TestQuantize:
    def test_range(self, rng):
        gray = rng.uniform(0.0, 255.0, (10, 10))
        quantized = quantize_gray(gray, levels=8)
        assert quantized.min() >= 0
        assert quantized.max() <= 7

    def test_boundaries(self):
        assert quantize_gray(np.array([[0.0]]), 16)[0, 0] == 0
        assert quantize_gray(np.array([[255.0]]), 16)[0, 0] == 15
        assert quantize_gray(np.array([[127.0]]), 2)[0, 0] == 0
        assert quantize_gray(np.array([[128.0]]), 2)[0, 0] == 1

    def test_rejects_too_few_levels(self):
        with pytest.raises(ValueError):
            quantize_gray(np.zeros((2, 2)), levels=1)


class TestCooccurrence:
    def test_known_small_matrix(self):
        # 2x2 image [[0,1],[0,1]] with offset (0,1): pairs (0,1) twice.
        quantized = np.array([[0, 1], [0, 1]])
        matrix = cooccurrence_matrix(quantized, offsets=[(0, 1)], levels=2)
        # Symmetric: (0,1) and (1,0) each get 2 counts of 4 total.
        np.testing.assert_allclose(matrix, [[0.0, 0.5], [0.5, 0.0]])

    def test_asymmetric_mode(self):
        quantized = np.array([[0, 1], [0, 1]])
        matrix = cooccurrence_matrix(
            quantized, offsets=[(0, 1)], levels=2, symmetric=False
        )
        np.testing.assert_allclose(matrix, [[0.0, 1.0], [0.0, 0.0]])

    def test_normalization(self, rng):
        quantized = rng.integers(0, 8, (12, 12))
        matrix = cooccurrence_matrix(quantized, levels=8)
        assert matrix.sum() == pytest.approx(1.0)
        assert matrix.min() >= 0.0

    def test_constant_image_concentrates_mass(self):
        quantized = np.full((6, 6), 3)
        matrix = cooccurrence_matrix(quantized, levels=8)
        assert matrix[3, 3] == pytest.approx(1.0)

    def test_oversized_offset_skipped(self):
        quantized = np.zeros((3, 3), dtype=int)
        matrix = cooccurrence_matrix(quantized, offsets=[(0, 1), (10, 0)], levels=2)
        assert matrix.sum() == pytest.approx(1.0)

    def test_all_offsets_invalid_raises(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.zeros((2, 2), dtype=int), offsets=[(5, 5)], levels=2)

    def test_value_validation(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.array([[0, 9]]), levels=4)
        with pytest.raises(ValueError):
            cooccurrence_matrix(np.zeros(4, dtype=int), levels=4)


class TestTextureFeatures:
    def test_sixteen_descriptors(self, rng):
        image = Image(rng.integers(0, 256, (16, 16, 3), dtype=np.uint8))
        descriptor = texture_features(image)
        assert descriptor.shape == (16,)
        assert len(TEXTURE_FEATURE_NAMES) == 16
        assert np.all(np.isfinite(descriptor))

    def test_constant_image_extremes(self):
        image = Image(np.full((8, 8, 3), 0.5))
        descriptor = dict(zip(TEXTURE_FEATURE_NAMES, texture_features(image)))
        assert descriptor["energy"] == pytest.approx(1.0)      # all mass in one cell
        assert descriptor["inertia"] == pytest.approx(0.0)     # no gray transitions
        assert descriptor["entropy"] == pytest.approx(0.0, abs=1e-6)
        assert descriptor["homogeneity"] == pytest.approx(1.0)
        assert descriptor["max_probability"] == pytest.approx(1.0)

    def test_checkerboard_maximizes_contrast(self):
        # Alternating black/white pixels: strong inertia, low homogeneity.
        pattern = np.indices((8, 8)).sum(axis=0) % 2
        pixels = np.repeat(pattern[..., None].astype(float), 3, axis=2)
        descriptor = dict(
            zip(TEXTURE_FEATURE_NAMES, texture_features(Image(pixels), levels=2))
        )
        smooth = np.zeros((8, 8, 3))
        smooth[:, :4] = 1.0  # one big edge only
        smooth_descriptor = dict(
            zip(TEXTURE_FEATURE_NAMES, texture_features(Image(smooth), levels=2))
        )
        assert descriptor["inertia"] > smooth_descriptor["inertia"]
        assert descriptor["homogeneity"] < smooth_descriptor["homogeneity"]

    def test_noise_has_high_entropy(self, rng):
        noisy = Image(rng.uniform(0.0, 1.0, (16, 16, 3)))
        flat = Image(np.full((16, 16, 3), 0.5))
        noisy_entropy = texture_features(noisy)[2]
        flat_entropy = texture_features(flat)[2]
        assert noisy_entropy > flat_entropy + 1.0

    def test_rotation_swaps_directional_structure(self, rng):
        # With symmetric multi-direction offsets, a 90-degree rotation
        # leaves the descriptor nearly unchanged.
        stripes = np.zeros((16, 16, 3))
        stripes[::2, :, :] = 1.0
        rotated = np.transpose(stripes, (1, 0, 2))
        a = texture_features(Image(stripes))
        b = texture_features(Image(rotated))
        np.testing.assert_allclose(a, b, rtol=1e-9)
