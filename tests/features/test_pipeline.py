"""Feature pipelines: extraction + standardization + PCA reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.pipeline import (
    FeaturePipeline,
    color_pipeline,
    extract_matrix,
    texture_pipeline,
)


class TestExtractMatrix:
    def test_stacks_descriptors(self, small_collection):
        matrix = extract_matrix(
            small_collection.images[:5], lambda img: np.array([float(img.label)])
        )
        assert matrix.shape == (5, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            extract_matrix([], lambda img: np.zeros(3))


class TestFeaturePipeline:
    def test_color_pipeline_dimensions(self, small_collection):
        pipeline = color_pipeline()
        features = pipeline.fit(small_collection.images)
        assert features.shape == (len(small_collection), 3)

    def test_texture_pipeline_dimensions(self, small_collection):
        pipeline = texture_pipeline()
        features = pipeline.fit(small_collection.images[:40])
        assert features.shape == (40, 4)

    def test_transform_matches_fit_output(self, small_collection):
        pipeline = color_pipeline()
        fitted = pipeline.fit(small_collection.images)
        transformed = pipeline.transform(small_collection.images[:10])
        np.testing.assert_allclose(transformed, fitted[:10], atol=1e-9)

    def test_transform_one(self, small_collection):
        pipeline = color_pipeline()
        fitted = pipeline.fit(small_collection.images)
        single = pipeline.transform_one(small_collection.images[3])
        np.testing.assert_allclose(single, fitted[3], atol=1e-9)

    def test_requires_fit_before_transform(self, small_collection):
        with pytest.raises(RuntimeError):
            color_pipeline().transform(small_collection.images[:2])

    def test_same_category_closer_than_random(self, small_collection):
        """Feature-space structure: intra-category distances < global."""
        pipeline = color_pipeline()
        features = pipeline.fit(small_collection.images)
        labels = small_collection.labels
        intra = []
        inter = []
        rng = np.random.default_rng(0)
        for _ in range(300):
            i, j = rng.integers(0, len(labels), 2)
            distance = float(np.sum((features[i] - features[j]) ** 2))
            (intra if labels[i] == labels[j] else inter).append(distance)
        assert np.mean(intra) < np.mean(inter)

    def test_explained_variance_ratio(self, small_collection):
        pipeline = color_pipeline()
        pipeline.fit(small_collection.images)
        ratio = pipeline.explained_variance_ratio
        assert ratio.shape == (3,)
        assert np.all(ratio >= 0.0)
        assert np.all(np.diff(ratio) <= 1e-12)

    def test_standardization_off(self, small_collection):
        pipeline = FeaturePipeline(
            lambda img: np.array([1.0, float(img.pixels.mean()), 2.0]),
            n_components=2,
            standardize=False,
        )
        features = pipeline.fit(small_collection.images[:10])
        assert features.shape == (10, 2)

    def test_validation(self, small_collection):
        with pytest.raises(ValueError):
            FeaturePipeline(lambda img: np.zeros(3), n_components=0)
        pipeline = FeaturePipeline(lambda img: np.zeros(2), n_components=3)
        with pytest.raises(ValueError):
            pipeline.fit(small_collection.images[:4])
