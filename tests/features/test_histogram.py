"""HSV color histograms and histogram dissimilarities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst
from hypothesis.extra.numpy import arrays

from repro.features.histogram import (
    chi2_histogram_distance,
    color_histogram,
    histogram_intersection,
    histogram_l1,
)
from repro.features.image import Image


class TestColorHistogram:
    def test_dimension_and_normalization(self, rng):
        image = Image(rng.integers(0, 256, (12, 12, 3), dtype=np.uint8))
        histogram = color_histogram(image)
        assert histogram.shape == (72,)
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.min() >= 0.0

    def test_custom_bins(self, rng):
        image = Image(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8))
        histogram = color_histogram(image, bins=(4, 4, 4))
        assert histogram.shape == (64,)

    def test_flat_image_single_bin(self):
        image = Image(np.full((6, 6, 3), 0.5))
        histogram = color_histogram(image)
        assert np.count_nonzero(histogram) == 1
        assert histogram.max() == pytest.approx(1.0)

    def test_distinct_colors_distinct_bins(self):
        red = Image(np.zeros((4, 4, 3)) + np.array([1.0, 0.0, 0.0]))
        blue = Image(np.zeros((4, 4, 3)) + np.array([0.0, 0.0, 1.0]))
        assert np.argmax(color_histogram(red)) != np.argmax(color_histogram(blue))

    def test_size_invariance(self, rng):
        # Same color distribution, different image sizes -> same histogram.
        small = Image(np.full((4, 4, 3), 0.3))
        large = Image(np.full((32, 32, 3), 0.3))
        np.testing.assert_allclose(color_histogram(small), color_histogram(large))

    def test_bin_validation(self, rng):
        image = Image(rng.integers(0, 256, (4, 4, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            color_histogram(image, bins=(0, 3, 3))


normalized_histograms = arrays(
    np.float64, (16,), elements=hst.floats(min_value=0.0, max_value=1.0)
).map(lambda a: a / a.sum() if a.sum() > 0 else np.full(16, 1.0 / 16.0))


class TestDistances:
    def test_identical_histograms_are_zero(self, rng):
        h = color_histogram(Image(rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)))
        assert histogram_intersection(h, h) == pytest.approx(0.0)
        assert histogram_l1(h, h) == pytest.approx(0.0)
        assert chi2_histogram_distance(h, h) == pytest.approx(0.0)

    def test_disjoint_histograms_are_maximal(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert histogram_intersection(a, b) == pytest.approx(1.0)
        assert histogram_l1(a, b) == pytest.approx(2.0)
        assert chi2_histogram_distance(a, b) == pytest.approx(1.0)

    @given(normalized_histograms, normalized_histograms)
    @settings(max_examples=100, deadline=None)
    def test_intersection_vs_l1_identity(self, a, b):
        # For normalized histograms: L1 = 2 * intersection dissimilarity.
        assert histogram_l1(a, b) == pytest.approx(
            2.0 * histogram_intersection(a, b), abs=1e-9
        )

    @given(normalized_histograms, normalized_histograms)
    @settings(max_examples=100, deadline=None)
    def test_symmetry_and_bounds(self, a, b):
        assert histogram_intersection(a, b) == pytest.approx(
            histogram_intersection(b, a)
        )
        assert -1e-12 <= histogram_intersection(a, b) <= 1.0 + 1e-12
        assert chi2_histogram_distance(a, b) == pytest.approx(
            chi2_histogram_distance(b, a)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_intersection(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            histogram_l1(np.array([-0.1, 1.1]), np.array([0.5, 0.5]))
