"""The fault_point hook: activation scoping, fire semantics, stats."""

from __future__ import annotations

import contextvars
import threading

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    activate_faults,
    active_faults,
    fault_point,
    faults_active,
    register_site,
    registered_sites,
)
from repro.obs import Tracer, activate

SITE = register_site("test.site", "synthetic site for the injection tests")
OTHER = register_site("test.other", "second synthetic site")


def error_plan(**kwargs) -> FaultPlan:
    return FaultPlan(specs=(FaultSpec(site=SITE, kind="error", **kwargs),))


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not faults_active()
        assert active_faults() is None
        assert fault_point(SITE) is None

    def test_disabled_payload_passes_through_untouched(self):
        payload = np.arange(3.0)
        assert fault_point(SITE, payload=payload) is payload

    def test_registered_sites_catalogue(self):
        sites = registered_sites()
        assert sites["test.site"] == "synthetic site for the injection tests"
        # The instrumented production modules registered theirs at import.
        for production_site in (
            "shard.scan",
            "kernel.compile",
            "cache.get",
            "cache.put",
            "checkpoint.save",
            "checkpoint.restore",
            "tree.node",
        ):
            assert production_site in sites


class TestActivation:
    def test_error_fault_raises_injected_fault(self):
        with activate_faults(error_plan(at=(1,))):
            with pytest.raises(InjectedFault) as info:
                fault_point(SITE, key="k")
        assert info.value.site == SITE
        assert info.value.key == "k"
        assert info.value.count == 1

    def test_activation_is_scoped(self):
        with activate_faults(error_plan(at=(1,))):
            assert faults_active()
        assert not faults_active()
        fault_point(SITE)  # armed no more

    def test_counts_are_per_key(self):
        with activate_faults(error_plan(at=(2,))) as active:
            fault_point(SITE, key="a")  # a:1
            fault_point(SITE, key="b")  # b:1
            with pytest.raises(InjectedFault):
                fault_point(SITE, key="a")  # a:2 fires
            assert active.clock.count(SITE, "b") == 1

    def test_unmatched_site_is_untouched(self):
        with activate_faults(error_plan(at=(1,))):
            assert fault_point(OTHER, payload="fine") == "fine"

    def test_latency_fault_uses_injected_sleep(self):
        sleeps = []
        plan = FaultPlan(
            specs=(FaultSpec(site=SITE, kind="latency", at=(1,), latency_s=0.25),)
        )
        with activate_faults(plan, sleep=sleeps.append):
            fault_point(SITE)
            fault_point(SITE)
        assert sleeps == [0.25]

    def test_corrupt_fault_transforms_payload(self):
        plan = FaultPlan(specs=(FaultSpec(site=SITE, kind="corrupt", at=(1,)),))
        with activate_faults(plan):
            damaged = fault_point(SITE, payload="x" * 30)
        assert damaged != "x" * 30

    def test_corrupt_without_payload_is_harmless(self):
        plan = FaultPlan(specs=(FaultSpec(site=SITE, kind="corrupt", at=(1,)),))
        with activate_faults(plan):
            assert fault_point(SITE) is None

    def test_latency_then_error_compose(self):
        sleeps = []
        plan = FaultPlan(
            specs=(
                FaultSpec(site=SITE, kind="latency", at=(1,), latency_s=0.1),
                FaultSpec(site=SITE, kind="error", at=(1,)),
            )
        )
        with activate_faults(plan, sleep=sleeps.append):
            with pytest.raises(InjectedFault):
                fault_point(SITE)
        assert sleeps == [0.1]  # slow call that then dies

    def test_max_fires_caps_a_spec(self):
        plan = FaultPlan(
            specs=(FaultSpec(site=SITE, kind="error", every=1, max_fires=2),)
        )
        with activate_faults(plan) as active:
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point(SITE)
            fault_point(SITE)  # capped: no fire
            assert active.total_fires == 2

    def test_validate_rejects_typo_site(self):
        plan = FaultPlan(specs=(FaultSpec(site="no.such.site", kind="error", at=(1,)),))
        with pytest.raises(ValueError, match="unregistered"):
            with activate_faults(plan):
                pass
        with activate_faults(plan, validate=False):
            pass  # explicit opt-out

    def test_stats_report_fires_by_site_and_kind(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site=SITE, kind="error", at=(1,)),
                FaultSpec(site=SITE, kind="corrupt", at=(2,)),
            ),
            name="stats-demo",
            seed=9,
        )
        with activate_faults(plan) as active:
            with pytest.raises(InjectedFault):
                fault_point(SITE)
            fault_point(SITE, payload="abcdef")
        stats = active.stats()
        assert stats["plan"] == "stats-demo"
        assert stats["seed"] == 9
        assert stats["total_fires"] == 2
        assert stats["by_site"] == {SITE: {"error": 1, "corrupt": 1}}
        assert stats["invocations"][f"{SITE}|*"] == 2


class TestContextPropagation:
    def test_copy_context_ships_activation_to_worker_thread(self):
        outcomes = []

        def worker():
            try:
                fault_point(SITE)
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")

        with activate_faults(error_plan(at=(1,))):
            context = contextvars.copy_context()
            thread = threading.Thread(target=context.run, args=(worker,))
            thread.start()
            thread.join()
        assert outcomes == ["fault"]

    def test_plain_thread_does_not_inherit_activation(self):
        outcomes = []

        def worker():
            outcomes.append(faults_active())

        with activate_faults(error_plan(at=(1,))):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert outcomes == [False]

    def test_fires_emit_trace_events(self):
        tracer = Tracer()
        with activate(tracer), tracer.span("chaos"):
            with activate_faults(error_plan(at=(1,))):
                with pytest.raises(InjectedFault):
                    fault_point(SITE, key="k")
        assert tracer.event_count("fault_injected") == 1

    def test_replay_is_bit_for_bit(self):
        plan = error_plan(probability=0.4)

        def run() -> list:
            fired = []
            with activate_faults(plan):
                for count in range(50):
                    try:
                        fault_point(SITE, key="k")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            return fired

        first, second = run(), run()
        assert first == second
        assert any(first) and not all(first)
