"""Checkpoint CRC validation, quarantine, genesis rebuild, typed errors."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, activate_faults
from repro.retrieval import QclusterMethod
from repro.service import (
    CheckpointCorruption,
    ManagedSession,
    RetrievalService,
    SessionNotFound,
    SessionStore,
)
from repro.service.metrics import ServiceMetrics


def make_session(session_id: str, vector) -> ManagedSession:
    point = np.asarray(vector, dtype=float)
    method = QclusterMethod()
    return ManagedSession(
        session_id=session_id,
        method=method,
        query=method.start(point),
        genesis=point.copy(),
    )


@pytest.fixture()
def store(tmp_path):
    metrics = ServiceMetrics()
    store = SessionStore(capacity=1, checkpoint_dir=tmp_path, metrics=metrics)
    store.test_metrics = metrics
    return store


def evict_to_disk(store: SessionStore, session: ManagedSession, tmp_path) -> None:
    """Push ``session`` out through the capacity evictor."""
    store.put(session)
    store.put(make_session("displacer", [9.0, 9.0, 9.0]))
    assert (tmp_path / f"{session.session_id}.json").exists()


class TestRoundTrip:
    def test_evict_restore_preserves_state(self, store, tmp_path):
        session = make_session("alpha", [1.0, 2.0, 3.0])
        session.iteration = 4
        session.provenance = ("checkpoint_rebuilt",)
        evict_to_disk(store, session, tmp_path)
        with store.lease("alpha") as restored:
            assert restored.iteration == 4
            assert restored.provenance == ("checkpoint_rebuilt",)
            np.testing.assert_array_equal(restored.genesis, [1.0, 2.0, 3.0])

    def test_pending_reasons_folded_into_checkpoint(self, store, tmp_path):
        session = make_session("alpha", [1.0, 2.0, 3.0])
        session.provenance = ("shard_failed",)
        session.pending_reasons = ("deadline", "shard_failed")
        evict_to_disk(store, session, tmp_path)
        with store.lease("alpha") as restored:
            assert restored.provenance == ("shard_failed", "deadline")

    def test_checkpoint_is_two_line_crc_format(self, store, tmp_path):
        evict_to_disk(store, make_session("alpha", [1.0, 2.0, 3.0]), tmp_path)
        header_line, payload_line = (
            (tmp_path / "alpha.json").read_text().split("\n", 1)
        )
        header = json.loads(header_line)
        assert header["format"] == 2
        assert header["payload_len"] == len(payload_line)
        assert header["genesis"] == [1.0, 2.0, 3.0]
        assert "engine" in json.loads(payload_line)

    def test_legacy_single_line_checkpoint_still_restores(self, store, tmp_path):
        session = make_session("alpha", [1.0, 2.0, 3.0])
        session.iteration = 2
        state = store.checkpoint_state(session)
        (tmp_path / "legacy.json").write_text(json.dumps(state))
        with store.lease("legacy") as restored:
            assert restored.iteration == 2


class TestCorruptionHandling:
    def test_garbage_file_raises_typed_corruption(self, store, tmp_path):
        (tmp_path / "bad.json").write_text("\x00not json at all")
        with pytest.raises(CheckpointCorruption) as info:
            with store.lease("bad"):
                pass
        assert info.value.session_id == "bad"
        # Typed as SessionNotFound/KeyError: create-if-missing callers work.
        assert isinstance(info.value, SessionNotFound)
        assert isinstance(info.value, KeyError)

    def test_corrupt_file_is_quarantined_and_id_freed(self, store, tmp_path):
        (tmp_path / "bad.json").write_text("garbage")
        with pytest.raises(CheckpointCorruption):
            with store.lease("bad"):
                pass
        assert not (tmp_path / "bad.json").exists()
        assert (tmp_path / "bad.json.corrupt").read_text() == "garbage"
        assert store.test_metrics.counter("checkpoints_quarantined") == 1
        # The id is free again: a fresh session can take it.
        store.put(make_session("bad", [0.0, 0.0, 0.0]))
        with store.lease("bad") as fresh:
            assert fresh.iteration == 0

    def test_truncated_payload_rebuilds_from_genesis(self, store, tmp_path):
        session = make_session("alpha", [1.0, 2.0, 3.0])
        session.iteration = 3
        evict_to_disk(store, session, tmp_path)
        path = tmp_path / "alpha.json"
        text = path.read_text()
        path.write_text(text[: len(text) * 2 // 3])  # torn write
        with store.lease("alpha") as rebuilt:
            assert rebuilt.iteration == 0  # feedback lost, session alive
            assert rebuilt.provenance == ("checkpoint_rebuilt",)
            np.testing.assert_array_equal(rebuilt.genesis, [1.0, 2.0, 3.0])
        assert (tmp_path / "alpha.json.corrupt").exists()
        assert store.test_metrics.counter("sessions_rebuilt") == 1

    def test_bitflip_payload_fails_crc_and_rebuilds(self, store, tmp_path):
        evict_to_disk(store, make_session("alpha", [1.0, 2.0, 3.0]), tmp_path)
        path = tmp_path / "alpha.json"
        head, payload = path.read_text().split("\n", 1)
        flipped = payload.replace("1", "2", 1)
        flipped += " " * (len(payload) - len(flipped))  # keep length: CRC must catch it
        path.write_text(head + "\n" + flipped)
        with store.lease("alpha") as rebuilt:
            assert rebuilt.provenance == ("checkpoint_rebuilt",)

    def test_damaged_payload_without_genesis_is_unsalvageable(self, store):
        state = {"engine": {"x": 1}, "iteration": 1, "genesis": None, "provenance": []}
        text = SessionStore.encode_checkpoint("sid", state)
        header, _ = text.split("\n", 1)
        with pytest.raises(CheckpointCorruption, match="no genesis"):
            SessionStore.decode_checkpoint("sid", header + "\ndamaged")

    def test_decode_accepts_intact_payload(self):
        state = {"engine": {"x": 1}, "iteration": 5, "genesis": [1.0], "provenance": []}
        text = SessionStore.encode_checkpoint("sid", state)
        mode, decoded = SessionStore.decode_checkpoint("sid", text)
        assert mode == "full"
        assert decoded == state


class TestInjectedCheckpointFaults:
    def test_save_fault_falls_back_to_memory_archive(self, store, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(site="checkpoint.save", kind="error", every=1),)
        )
        session = make_session("alpha", [1.0, 2.0, 3.0])
        session.iteration = 2
        with activate_faults(plan):
            evict_to_disk_failed = store.put(session) or store.put(
                make_session("displacer", [9.0, 9.0, 9.0])
            )
            assert evict_to_disk_failed is None
        assert not (tmp_path / "alpha.json").exists()
        assert store.test_metrics.counter("checkpoint_save_errors") == 1
        with store.lease("alpha") as restored:  # state survived in memory
            assert restored.iteration == 2

    def test_restore_fault_is_retried_transparently(self, store, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(site="checkpoint.restore", kind="error", at=(1,)),)
        )
        session = make_session("alpha", [1.0, 2.0, 3.0])
        session.iteration = 2
        evict_to_disk(store, session, tmp_path)
        with activate_faults(plan):
            with store.lease("alpha") as restored:
                assert restored.iteration == 2
        assert store.test_metrics.counter("restore_retries") == 1

    def test_save_corruption_surfaces_as_rebuild_on_restore(self, store, tmp_path):
        plan = FaultPlan(
            specs=(FaultSpec(site="checkpoint.save", kind="corrupt", every=1),)
        )
        session = make_session("alpha", [1.0, 2.0, 3.0])
        session.iteration = 2
        with activate_faults(plan):
            evict_to_disk(store, session, tmp_path)
        with store.lease("alpha") as rebuilt:
            assert rebuilt.iteration == 0
            assert rebuilt.provenance == ("checkpoint_rebuilt",)


class TestServiceLevelQuality:
    def test_rebuilt_session_serves_degraded_pages(self, database, tmp_path):
        service = RetrievalService(
            database,
            k=10,
            capacity=1,
            checkpoint_dir=tmp_path,
            use_index=False,
            cache_size=0,
        )
        try:
            first = service.create_session(0, session_id="victim")
            page = service.query(first)
            assert page.quality.is_exact
            service.create_session(3, session_id="displacer")  # evicts victim
            path = tmp_path / "victim.json"
            text = path.read_text()
            path.write_text(text[: len(text) * 2 // 3])
            page = service.query("victim")
            assert not page.quality.is_exact
            assert "checkpoint_rebuilt" in page.quality.reasons
            # Stickiness: every later page of this session stays marked.
            page = service.feedback("victim", [0, 1, 2])
            assert "checkpoint_rebuilt" in page.quality.reasons
        finally:
            service.shutdown()
