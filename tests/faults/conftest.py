"""Shared fixtures for the fault-injection and chaos suite.

The CI chaos job parameterizes this directory through two environment
variables:

* ``REPRO_CHAOS_PLAN`` — restrict the recovery tests to one builtin
  plan (``worker-crash`` / ``slow-shard`` / ``corrupt-checkpoint``);
  unset runs all of them (the local default).
* ``REPRO_CHAOS_SCALE`` — ``large`` drives more sessions and feedback
  rounds through the chaos workload (the nightly configuration);
  anything else uses the quick PR-gate scale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.faults.plans import BUILTIN_PLAN_NAMES
from repro.retrieval import FeatureDatabase


def chaos_plan_names() -> tuple:
    """Builtin plan names the current environment asks to exercise."""
    selected = os.environ.get("REPRO_CHAOS_PLAN", "").strip()
    if selected:
        if selected not in BUILTIN_PLAN_NAMES:
            raise ValueError(
                f"REPRO_CHAOS_PLAN={selected!r} is not one of {BUILTIN_PLAN_NAMES}"
            )
        return (selected,)
    return BUILTIN_PLAN_NAMES


def chaos_scale() -> dict:
    """Workload size knobs: nightly ``large`` vs the PR-gate default."""
    if os.environ.get("REPRO_CHAOS_SCALE", "").strip() == "large":
        return {"sessions": 8, "iterations": 5, "seeds": (0, 1, 2)}
    return {"sessions": 4, "iterations": 3, "seeds": (0,)}


@pytest.fixture(scope="session")
def database() -> FeatureDatabase:
    """120 points in 3-d: four well-separated Gaussian categories."""
    rng = np.random.default_rng(7)
    centers = np.array(
        [[0.0, 0.0, 0.0], [4.0, 0.0, 0.0], [0.0, 4.0, 0.0], [4.0, 4.0, 4.0]]
    )
    vectors = np.concatenate(
        [center + 0.4 * rng.standard_normal((30, 3)) for center in centers]
    )
    labels = np.repeat(np.arange(4), 30)
    return FeatureDatabase(vectors, labels)
