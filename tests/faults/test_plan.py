"""FaultSpec / FaultPlan / FaultClock: validation and determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultClock,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_payload,
)


class TestFaultSpec:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one trigger"):
            FaultSpec(site="shard.scan", kind="error")
        with pytest.raises(ValueError, match="exactly one trigger"):
            FaultSpec(site="shard.scan", kind="error", at=(1,), every=2)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="shard.scan", kind="explode", at=(1,))

    def test_at_counts_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(site="shard.scan", kind="error", at=(0,))

    def test_latency_kind_needs_positive_delay(self):
        with pytest.raises(ValueError, match="latency_s"):
            FaultSpec(site="shard.scan", kind="latency", at=(1,))

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="shard.scan", kind="error", probability=1.5)

    def test_max_fires_positive(self):
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(site="shard.scan", kind="error", at=(1,), max_fires=0)

    def test_at_trigger_fires_on_exact_counts(self):
        spec = FaultSpec(site="s", kind="error", at=(2, 5))
        fired = [count for count in range(1, 8) if spec.matches(0, 0, None, count)]
        assert fired == [2, 5]

    def test_every_trigger_fires_on_modulus(self):
        spec = FaultSpec(site="s", kind="error", every=3)
        fired = [count for count in range(1, 10) if spec.matches(0, 0, None, count)]
        assert fired == [3, 6, 9]

    def test_key_scoping(self):
        spec = FaultSpec(site="s", kind="error", at=(1,), key="shard-0")
        assert spec.matches(0, 0, "shard-0", 1)
        assert not spec.matches(0, 0, "shard-1", 1)
        assert not spec.matches(0, 0, None, 1)

    def test_probability_draws_are_deterministic(self):
        spec = FaultSpec(site="s", kind="error", probability=0.5)
        first = [spec.matches(7, 0, "k", count) for count in range(1, 200)]
        second = [spec.matches(7, 0, "k", count) for count in range(1, 200)]
        assert first == second
        assert any(first) and not all(first)

    def test_probability_depends_on_seed_and_index(self):
        spec = FaultSpec(site="s", kind="error", probability=0.5)
        seed_a = [spec.matches(1, 0, "k", count) for count in range(1, 200)]
        seed_b = [spec.matches(2, 0, "k", count) for count in range(1, 200)]
        index_b = [spec.matches(1, 1, "k", count) for count in range(1, 200)]
        assert seed_a != seed_b
        assert seed_a != index_b

    def test_probability_rate_is_calibrated(self):
        spec = FaultSpec(site="s", kind="error", probability=0.3)
        fired = sum(spec.matches(0, 0, None, count) for count in range(1, 5001))
        assert 0.25 < fired / 5000 < 0.35

    def test_dict_round_trip(self):
        spec = FaultSpec(
            site="cache.put",
            kind="corrupt",
            every=3,
            key="abc",
            max_fires=2,
            message="bit rot",
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"site": "s", "kind": "error", "at": [1], "boom": 1})


class TestCorruptPayload:
    def test_string_keeps_head_loses_tail(self):
        text = "x" * 300
        damaged = corrupt_payload(text)
        assert damaged != text
        assert damaged.startswith("x" * 200)
        assert corrupt_payload(text) == damaged  # deterministic

    def test_bytes(self):
        blob = b"y" * 30
        damaged = corrupt_payload(blob)
        assert damaged != blob and damaged.startswith(b"y" * 20)

    def test_array_is_copied_not_mutated(self):
        array = np.arange(4.0)
        damaged = corrupt_payload(array)
        assert not np.array_equal(damaged, array)
        np.testing.assert_array_equal(array, np.arange(4.0))

    def test_tuple_corrupts_last_array(self):
        ids = np.arange(3)
        distances = np.arange(3.0)
        damaged = corrupt_payload((ids, distances))
        np.testing.assert_array_equal(damaged[0], ids)
        assert not np.array_equal(damaged[1], distances)

    def test_unknown_payload_is_total_loss(self):
        assert corrupt_payload({"a": 1}) is None


class TestFaultClock:
    def test_counts_are_per_site_and_key(self):
        clock = FaultClock()
        assert clock.tick("s", "a") == 1
        assert clock.tick("s", "a") == 2
        assert clock.tick("s", "b") == 1
        assert clock.tick("t", "a") == 1
        assert clock.count("s", "a") == 2
        assert clock.count("nope") == 0

    def test_snapshot_format(self):
        clock = FaultClock()
        clock.tick("s", None)
        clock.tick("s", "k")
        assert clock.snapshot() == {"s|*": 1, "s|k": 1}


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="shard.scan", kind="error", probability=0.5),
                FaultSpec(site="cache.put", kind="corrupt", every=2),
            ),
            seed=3,
            name="demo",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_sites_sorted_unique(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="b", kind="error", at=(1,)),
                FaultSpec(site="a", kind="error", at=(1,)),
                FaultSpec(site="b", kind="latency", at=(1,), latency_s=0.1),
            )
        )
        assert plan.sites == ("a", "b")

    def test_validate_sites_catches_typos(self):
        plan = FaultPlan(specs=(FaultSpec(site="shardd.scan", kind="error", at=(1,)),))
        with pytest.raises(ValueError, match="unregistered"):
            plan.validate_sites(["shard.scan"])

    def test_specs_must_be_fault_specs(self):
        with pytest.raises(TypeError):
            FaultPlan(specs=({"site": "s"},))

    def test_injected_fault_carries_site_key_count(self):
        error = InjectedFault("shard.scan", "0", 3, "worker crash")
        assert error.site == "shard.scan"
        assert error.key == "0"
        assert error.count == 3
        assert "worker crash" in str(error)

    def test_fault_kinds_catalogue(self):
        assert FAULT_KINDS == ("error", "latency", "corrupt")
