"""RetryPolicy / DeadlineBudget / retry_call semantics."""

from __future__ import annotations

import pytest

from repro.service.resilience import (
    DeadlineBudget,
    ResiliencePolicy,
    RetryPolicy,
    retry_call,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay_s=-1)

    def test_backoff_schedule_is_bounded_exponential(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05)
        delays = [policy.delay_for(attempt) for attempt in range(1, 6)]
        assert delays == pytest.approx([0.01, 0.02, 0.04, 0.05, 0.05])

    def test_delay_for_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)


class TestDeadlineBudget:
    def test_unlimited_budget(self):
        budget = DeadlineBudget(None)
        assert budget.remaining == float("inf")
        assert not budget.expired

    def test_budget_expires_with_the_clock(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        assert budget.remaining == pytest.approx(1.0)
        clock.now = 0.6
        assert budget.remaining == pytest.approx(0.4)
        assert not budget.expired
        clock.now = 1.2
        assert budget.expired
        assert budget.remaining == 0.0

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            DeadlineBudget(0.0)


class TestResiliencePolicy:
    def test_defaults_are_unlimited(self):
        policy = ResiliencePolicy()
        assert policy.request_deadline_s is None
        assert policy.hedge_after_s is None
        assert policy.budget().remaining == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(request_deadline_s=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(hedge_after_s=-1)

    def test_budget_uses_policy_deadline(self):
        clock = FakeClock()
        budget = ResiliencePolicy(request_deadline_s=2.0).budget(clock=clock)
        clock.now = 3.0
        assert budget.expired


class TestRetryCall:
    def test_succeeds_first_try_without_sleeping(self):
        sleeps = []
        result = retry_call(lambda: 42, RetryPolicy(), sleep=sleeps.append)
        assert result == 42
        assert sleeps == []

    def test_retries_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, multiplier=2.0)
        result = retry_call(flaky, policy, sleep=sleeps.append)
        assert result == "ok"
        assert len(attempts) == 3
        assert sleeps == pytest.approx([0.01, 0.02])

    def test_exhausted_attempts_reraise_last_error(self):
        def always_fails():
            raise OSError("down")

        with pytest.raises(OSError, match="down"):
            retry_call(always_fails, RetryPolicy(max_attempts=2), sleep=lambda _: None)

    def test_non_retryable_errors_propagate_immediately(self):
        attempts = []

        def fails():
            attempts.append(1)
            raise KeyError("fatal")

        with pytest.raises(KeyError):
            retry_call(
                fails,
                RetryPolicy(max_attempts=5),
                retryable=(OSError,),
                sleep=lambda _: None,
            )
        assert len(attempts) == 1

    def test_expired_deadline_stops_retrying(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        clock.now = 2.0
        attempts = []

        def fails():
            attempts.append(1)
            raise OSError("down")

        with pytest.raises(OSError):
            retry_call(
                fails, RetryPolicy(max_attempts=5), deadline=budget, sleep=lambda _: None
            )
        assert len(attempts) == 1

    def test_backoff_clamped_to_remaining_budget(self):
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock=clock)
        clock.now = 0.95  # 0.05s left, backoff would be 0.25
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError("transient")
            return "ok"

        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.25)
        assert retry_call(flaky, policy, deadline=budget, sleep=sleeps.append) == "ok"
        assert sleeps == pytest.approx([0.05])

    def test_on_retry_callback_sees_attempt_and_error(self):
        seen = []

        def flaky():
            if not seen:
                raise OSError("once")
            return "ok"

        retry_call(
            flaky,
            RetryPolicy(),
            sleep=lambda _: None,
            on_retry=lambda attempt, error: seen.append((attempt, str(error))),
        )
        assert seen == [(1, "once")]
