"""The resilience contract, end to end.

Under every builtin fault plan, each page a caller receives is either
**byte-identical** to the fault-free run or **explicitly degraded**
with machine-readable :class:`ResultQuality` reasons — and replaying
the same plan reproduces the same behaviour bit for bit.

``REPRO_CHAOS_PLAN`` / ``REPRO_CHAOS_SCALE`` (see ``conftest.py``)
let CI split the matrix and the nightly job raise the workload size.
"""

from __future__ import annotations

import tempfile
from contextlib import nullcontext

import numpy as np
import pytest

from repro.faults import activate_faults
from repro.faults.plans import builtin_plan
from repro.retrieval import SimulatedUser
from repro.service import RetrievalService

from .conftest import chaos_plan_names, chaos_scale

SCALE = chaos_scale()
K = 10


def run_workload(
    database,
    fault_plan,
    *,
    workload_seed=0,
    shards=4,
    store_path=None,
    batching=False,
    ann=False,
):
    """Round-robin query/feedback rounds; returns (records, fire stats).

    With ``store_path`` the service is backed by that feature-store
    file (arming the ``store.*`` fault sites); the fault-free baseline
    must use the same path so both runs rank identical float32 bytes.
    With ``batching`` every ranking routes through the batching
    executor (arming the ``batch.execute`` site); the sequential
    workload yields micro-batches of one, which still traverse the
    full batch path.  With ``ann`` the service builds a spill tree and
    every request asks for the approximate tier (arming the
    ``index.descend`` site); small leaves so the 120-row database
    actually splits.
    """
    from repro.index.spill import SpillTreeConfig
    from repro.store import FeatureStore

    rng = np.random.default_rng(workload_seed)
    query_ids = [
        int(q) for q in rng.integers(0, database.size, size=SCALE["sessions"])
    ]
    records = []
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        service = RetrievalService(
            FeatureStore.open(store_path) if store_path is not None else database,
            k=K,
            use_index=False,
            n_shards=shards,
            capacity=2,  # small: forces checkpoint evict/restore churn
            checkpoint_dir=checkpoint_dir,
            cache_size=32,
            batching=batching,
            ann=SpillTreeConfig(leaf_capacity=16, max_leaves=4) if ann else None,
        )
        context = (
            activate_faults(fault_plan) if fault_plan is not None else nullcontext()
        )
        try:
            with context as active:
                session_ids = [
                    service.create_session(q, session_id=f"chaos-{i}")
                    for i, q in enumerate(query_ids)
                ]
                users = [
                    SimulatedUser(database, database.category_of(q))
                    for q in query_ids
                ]
                last_pages = {}
                for round_index in range(SCALE["iterations"] + 1):
                    for index, session_id in enumerate(session_ids):
                        record = {"key": (index, round_index)}
                        try:
                            if round_index == 0 or index not in last_pages:
                                page = service.query(session_id, approximate=ann)
                            else:
                                judgment = users[index].judge(last_pages[index].ids)
                                page = service.feedback(
                                    session_id,
                                    judgment.relevant_indices,
                                    judgment.scores,
                                    approximate=ann,
                                )
                        except Exception as error:
                            record["error"] = repr(error)
                        else:
                            last_pages[index] = page
                            record["ids"] = page.ids.tobytes()
                            record["distances"] = page.distances.tobytes()
                            record["quality"] = page.quality.level
                            record["reasons"] = page.quality.reasons
                        records.append(record)
                stats = active.stats() if active is not None else None
        finally:
            service.shutdown()
    return records, stats


def check_contract(baseline, faulted):
    """Every faulted page: byte-identical, explicitly degraded, or errored.

    Approximate pages obey the same contract: defeatist descent is
    deterministic, so a healthy ANN page must match its fault-free ANN
    twin byte for byte, while an ``ann_fallback`` rescue is announced
    on the page and — because the exact scan's content differs from
    the twin's defeatist page — diverges the session from there on.
    """
    assert not any("error" in record for record in baseline)
    by_key = {record["key"]: record for record in baseline}
    counts = {"exact": 0, "approximate": 0, "fallback": 0, "degraded": 0, "error": 0}
    diverged = set()
    for record in faulted:
        session_index = record["key"][0]
        if "error" in record:
            # The caller saw the exception — nothing silent — but this
            # session's feedback trajectory now differs from baseline,
            # so its later pages are incomparable.
            counts["error"] += 1
            diverged.add(session_index)
            continue
        if session_index in diverged:
            continue
        reasons = record.get("reasons", ())
        if record["quality"] == "exact":
            counts["exact"] += 1
            comparable = True
        elif record["quality"] == "approximate" and "ann_fallback" not in reasons:
            assert reasons, "approximate page must carry reasons"
            counts["approximate"] += 1
            comparable = True
        elif "ann_fallback" in reasons:
            assert record["quality"] == "approximate"
            counts["fallback"] += 1
            diverged.add(session_index)
            comparable = False
        else:
            counts["degraded"] += 1
            assert record["quality"] == "degraded"
            assert record["reasons"], "degraded page must carry reasons"
            comparable = False
        if comparable:
            twin = by_key[record["key"]]
            assert record["ids"] == twin["ids"], record["key"]
            assert record["distances"] == twin["distances"], record["key"]
    return counts


@pytest.mark.parametrize("plan_name", chaos_plan_names())
@pytest.mark.parametrize("fault_seed", SCALE["seeds"])
def test_byte_identical_or_degraded(database, plan_name, fault_seed, tmp_path):
    plan = builtin_plan(plan_name, seed=fault_seed)
    store_path = None
    if plan_name == "torn-block":
        # This plan targets the store.* sites, so the workload must be
        # served from an actual store file.
        from repro.store import build_store

        store_path = tmp_path / "chaos.qcs"
        build_store(database, store_path, n_shards=4)
    # batch-abort targets batch.execute, so both runs must route
    # rankings through the batching executor; ann-descend targets
    # index.descend, so both runs must serve from the spill tree.
    batching = plan_name == "batch-abort"
    ann = plan_name == "ann-descend"
    baseline, _ = run_workload(
        database, None, store_path=store_path, batching=batching, ann=ann
    )
    faulted, stats = run_workload(
        database, plan, store_path=store_path, batching=batching, ann=ann
    )
    counts = check_contract(baseline, faulted)
    assert stats["total_fires"] > 0, "plan never fired: workload too small"
    assert (
        counts["exact"] + counts["approximate"] > 0
    ), "no page survived to be byte-checked"
    if plan_name == "ann-descend":
        assert counts["fallback"] > 0, "no descent failed: plan miswired"
    if plan_name == "torn-block":
        degraded_reasons = {
            reason
            for record in faulted
            for reason in record.get("reasons", ())
        }
        assert "store_block_corrupt" in degraded_reasons


@pytest.mark.parametrize("plan_name", ["worker-crash", "corrupt-checkpoint"])
def test_replay_is_deterministic(database, plan_name):
    """Same plan, same workload → identical pages, qualities, and fires.

    ``slow-shard`` is excluded: latency faults interact with real thread
    scheduling, so hedge counts may differ run to run (its *pages* are
    still covered by the byte-identical test above).
    """
    if plan_name not in chaos_plan_names():
        pytest.skip(f"REPRO_CHAOS_PLAN excludes {plan_name}")
    plan = builtin_plan(plan_name, seed=0)
    first, first_stats = run_workload(database, plan, shards=1)
    second, second_stats = run_workload(database, plan, shards=1)
    assert first == second
    assert first_stats["invocations"] == second_stats["invocations"]
    assert first_stats["by_site"] == second_stats["by_site"]


def test_fault_free_run_is_all_exact(database):
    records, _ = run_workload(database, None)
    assert all(record.get("quality") == "exact" for record in records)


@pytest.mark.parametrize("plan_name", chaos_plan_names())
def test_faults_never_leak_out_of_activation(database, plan_name):
    """After a chaos workload the ambient state is fully disarmed."""
    from repro.faults import faults_active

    run_workload(
        database,
        builtin_plan(plan_name, seed=0),
        batching=plan_name == "batch-abort",
    )
    assert not faults_active()
    records, _ = run_workload(database, None)
    assert all(record.get("quality") == "exact" for record in records)
