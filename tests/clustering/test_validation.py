"""Cluster validation indices: Rand, adjusted Rand, silhouette."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.validation import (
    adjusted_rand_index,
    contingency_table,
    rand_index,
    silhouette_score,
)


class TestContingency:
    def test_basic_table(self):
        table = contingency_table([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            contingency_table([0, 1], [0, 1, 2])

    def test_non_contiguous_labels(self):
        table = contingency_table([5, 5, 9], [2, 7, 7])
        assert table.sum() == 3


class TestRandIndices:
    def test_identical_clusterings(self):
        labels = [0, 0, 1, 1, 2]
        assert rand_index(labels, labels) == 1.0
        assert adjusted_rand_index(labels, labels) == 1.0

    def test_permuted_labels_are_identical(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_known_value(self):
        # Two partitions of 6 points; by hand: N11 = 2 pairs together in
        # both, N00 = 8 pairs separated in both -> RI = 10/15.
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 2, 2]
        assert rand_index(a, b) == pytest.approx(10.0 / 15.0)

    def test_ari_near_zero_for_random(self, rng):
        a = rng.integers(0, 4, 400)
        b = rng.integers(0, 4, 400)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            rand_index([0], [0])


class TestSilhouette:
    def test_well_separated_blobs_score_high(self, rng):
        points = np.vstack(
            [rng.standard_normal((20, 2)) * 0.3, rng.standard_normal((20, 2)) * 0.3 + 10.0]
        )
        labels = [0] * 20 + [1] * 20
        assert silhouette_score(points, labels) > 0.9

    def test_random_labels_score_low(self, rng):
        points = rng.standard_normal((40, 2))
        labels = rng.integers(0, 2, 40)
        assert silhouette_score(points, labels) < 0.2

    def test_singleton_cluster_contributes_zero(self, rng):
        points = np.vstack([rng.standard_normal((10, 2)), [[100.0, 100.0]]])
        labels = [0] * 10 + [1]
        score = silhouette_score(points, labels)
        assert np.isfinite(score)

    def test_requires_two_clusters(self, rng):
        with pytest.raises(ValueError):
            silhouette_score(rng.standard_normal((5, 2)), [0] * 5)

    def test_label_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            silhouette_score(rng.standard_normal((5, 2)), [0, 1])
