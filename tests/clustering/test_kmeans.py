"""Lloyd's k-means with k-means++ seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans, kmeans_plus_plus_init
from repro.clustering.validation import adjusted_rand_index


def three_blobs(rng, n_per=20, separation=10.0):
    centers = np.array([[0.0, 0.0], [separation, 0.0], [0.0, separation]])
    points = np.vstack([c + rng.standard_normal((n_per, 2)) * 0.5 for c in centers])
    labels = np.repeat(np.arange(3), n_per)
    return points, labels


class TestInit:
    def test_centers_are_data_points(self, rng):
        points = rng.standard_normal((30, 3))
        centers = kmeans_plus_plus_init(points, 4, rng)
        assert centers.shape == (4, 3)
        for center in centers:
            assert any(np.allclose(center, point) for point in points)

    def test_spreads_across_blobs(self, rng):
        points, _ = three_blobs(rng)
        centers = kmeans_plus_plus_init(points, 3, rng)
        # All three blobs should receive one seed.
        blob_of = lambda c: int(np.argmin([np.sum((c - b) ** 2) for b in
                                           ([0, 0], [10, 0], [0, 10])]))
        assert len({blob_of(c) for c in centers}) == 3

    def test_duplicate_points_handled(self, rng):
        points = np.ones((10, 2))
        centers = kmeans_plus_plus_init(points, 3, rng)
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_three_blobs(self, rng):
        points, labels = three_blobs(rng)
        result = kmeans(points, 3, rng)
        assert adjusted_rand_index(result.labels, labels) == 1.0
        assert result.inertia < 2.0 * points.shape[0]

    def test_labels_contiguous(self, rng):
        points, _ = three_blobs(rng)
        result = kmeans(points, 3, rng)
        assert set(result.labels) == {0, 1, 2}

    def test_members_partition(self, rng):
        points, _ = three_blobs(rng)
        result = kmeans(points, 3, rng)
        members = np.concatenate([result.members(c) for c in range(3)])
        assert sorted(members) == list(range(points.shape[0]))

    def test_k_clamped_to_n(self, rng):
        result = kmeans(rng.standard_normal((3, 2)), 10, rng)
        assert result.centers.shape[0] <= 3

    def test_single_cluster(self, rng):
        points = rng.standard_normal((20, 3))
        result = kmeans(points, 1, rng)
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0))

    def test_deterministic_with_seed(self):
        rng_points = np.random.default_rng(1)
        points, _ = three_blobs(rng_points)
        first = kmeans(points, 3, np.random.default_rng(5))
        second = kmeans(points, 3, np.random.default_rng(5))
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_inertia_decreases_with_more_clusters(self, rng):
        points = rng.standard_normal((100, 3))
        inertia_2 = kmeans(points, 2, np.random.default_rng(0)).inertia
        inertia_8 = kmeans(points, 8, np.random.default_rng(0)).inertia
        assert inertia_8 < inertia_2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2, rng)
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal((5, 2)), 0, rng)


class TestEngineIntegration:
    def test_kmeans_initial_method(self, rng):
        from repro.core.config import QclusterConfig
        from repro.core.qcluster import QclusterEngine

        engine = QclusterEngine(QclusterConfig(initial_method="kmeans"))
        engine.start(np.zeros(3))
        relevant = np.vstack(
            [rng.normal(0.0, 0.4, (10, 3)), rng.normal(10.0, 0.4, (10, 3))]
        )
        engine.feedback(relevant)
        assert engine.n_clusters == 2

    def test_unknown_initial_method_rejected(self):
        from repro.core.config import QclusterConfig

        with pytest.raises(ValueError):
            QclusterConfig(initial_method="spectral")
