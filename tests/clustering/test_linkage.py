"""Lance-Williams updates vs direct inter-cluster distance computation."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.clustering.agglomerative import pairwise_sq_euclidean
from repro.clustering.linkage import LINKAGES, lance_williams_update


def direct_linkage(linkage, group_a, group_b):
    """Inter-cluster distance computed from raw points (squared Euclidean)."""
    distances = [
        float(np.sum((a - b) ** 2)) for a, b in itertools.product(group_a, group_b)
    ]
    if linkage == "single":
        return min(distances)
    if linkage == "complete":
        return max(distances)
    if linkage == "average":
        return float(np.mean(distances))
    raise ValueError(linkage)


class TestLanceWilliams:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average"])
    def test_update_matches_direct(self, linkage, rng):
        """Merging i and j, the updated distance to k matches recomputation."""
        group_i = rng.standard_normal((3, 2))
        group_j = rng.standard_normal((4, 2)) + 1.0
        group_k = rng.standard_normal((5, 2)) - 1.0
        d_ki = direct_linkage(linkage, group_k, group_i)
        d_kj = direct_linkage(linkage, group_k, group_j)
        d_ij = direct_linkage(linkage, group_i, group_j)
        updated = lance_williams_update(linkage, d_ki, d_kj, d_ij, 3, 4, 5)
        merged = np.vstack([group_i, group_j])
        assert updated == pytest.approx(direct_linkage(linkage, group_k, merged))

    def test_weighted_is_midpoint(self):
        assert lance_williams_update("weighted", 2.0, 6.0, 1.0, 3, 5, 2) == 4.0

    def test_ward_update_matches_variance_formula(self, rng):
        """Ward on singletons: D({x,y},{z}) = (4/3) ||(x+y)/2 - z||^2.

        With squared-Euclidean initial distances, Ward's cluster distance
        is ``2 n_a n_b / (n_a + n_b) ||mean_a - mean_b||^2``; for the
        merge of two singletons vs a third point that is (4/3) times the
        squared distance from the midpoint.
        """
        x, y, z = rng.standard_normal((3, 4))
        d_xy = float(np.sum((x - y) ** 2))
        d_xz = float(np.sum((x - z) ** 2))
        d_yz = float(np.sum((y - z) ** 2))
        updated = lance_williams_update("ward", d_xz, d_yz, d_xy, 1, 1, 1)
        midpoint = (x + y) / 2.0
        expected = 4.0 / 3.0 * float(np.sum((midpoint - z) ** 2))
        assert updated == pytest.approx(expected)

    def test_unknown_linkage(self):
        with pytest.raises(ValueError, match="unknown linkage"):
            lance_williams_update("banana", 1.0, 1.0, 1.0, 1, 1, 1)

    def test_registry_contents(self):
        assert set(LINKAGES) == {"single", "complete", "average", "weighted", "ward"}


class TestPairwiseSqEuclidean:
    def test_matches_direct_computation(self, rng):
        points = rng.standard_normal((10, 3))
        matrix = pairwise_sq_euclidean(points)
        for i in range(10):
            for j in range(10):
                assert matrix[i, j] == pytest.approx(
                    float(np.sum((points[i] - points[j]) ** 2)), abs=1e-9
                )

    def test_diagonal_is_zero(self, rng):
        matrix = pairwise_sq_euclidean(rng.standard_normal((6, 4)))
        np.testing.assert_array_equal(np.diag(matrix), np.zeros(6))

    def test_never_negative(self, rng):
        # The expansion-based formula can go slightly negative; must clamp.
        points = np.repeat(rng.standard_normal((1, 5)), 8, axis=0)
        matrix = pairwise_sq_euclidean(points * 1e8)
        assert matrix.min() >= 0.0
