"""Agglomerative clustering: blob recovery, stopping rules, edge cases."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
from scipy.spatial.distance import pdist

from repro.clustering.agglomerative import AgglomerativeClusterer
from repro.clustering.validation import adjusted_rand_index


def three_blobs(rng, n_per=15, dim=3, separation=8.0):
    centers = np.array([[0.0] * dim, [separation] + [0.0] * (dim - 1), [0.0, separation] + [0.0] * (dim - 2)])
    points = np.vstack([c + rng.standard_normal((n_per, dim)) * 0.5 for c in centers])
    labels = np.repeat(np.arange(3), n_per)
    return points, labels


class TestClustering:
    @pytest.mark.parametrize("linkage", ["single", "complete", "average", "weighted", "ward"])
    def test_recovers_three_blobs(self, linkage, rng):
        points, labels = three_blobs(rng)
        result = AgglomerativeClusterer(n_clusters=3, linkage=linkage).fit(points)
        assert result.n_clusters == 3
        assert adjusted_rand_index(result.labels, labels) == 1.0

    def test_labels_are_contiguous(self, rng):
        points, _ = three_blobs(rng)
        result = AgglomerativeClusterer(n_clusters=3).fit(points)
        assert set(result.labels) == {0, 1, 2}

    def test_members_partition_points(self, rng):
        points, _ = three_blobs(rng)
        result = AgglomerativeClusterer(n_clusters=3).fit(points)
        all_members = np.concatenate([result.members(c) for c in range(3)])
        assert sorted(all_members) == list(range(points.shape[0]))

    def test_distance_threshold_stops_early(self, rng):
        points, _ = three_blobs(rng, separation=20.0)
        # Threshold below the inter-blob distance: merging stops with the
        # three blobs intact, never merging across.
        result = AgglomerativeClusterer(
            n_clusters=1, linkage="single", distance_threshold=25.0
        ).fit(points)
        assert result.n_clusters == 3

    def test_full_dendrogram_reaches_one_cluster(self, rng):
        points, _ = three_blobs(rng, n_per=5)
        result = AgglomerativeClusterer(n_clusters=1).fit(points)
        assert result.n_clusters == 1
        assert len(result.merges) == points.shape[0] - 1

    def test_merge_distances_monotone_for_complete_linkage(self, rng):
        # Complete/average linkage are monotone: merge distances never
        # decrease along the dendrogram.
        points, _ = three_blobs(rng, n_per=8)
        result = AgglomerativeClusterer(n_clusters=1, linkage="complete").fit(points)
        distances = [m.distance for m in result.merges]
        assert all(b >= a - 1e-9 for a, b in zip(distances, distances[1:]))

    def test_matches_scipy_average_linkage(self, rng):
        points = rng.standard_normal((20, 3))
        ours = AgglomerativeClusterer(n_clusters=4, linkage="average").fit(points)
        # scipy's average linkage on *squared* distances = ours.
        condensed = pdist(points, metric="sqeuclidean")
        scipy_labels = sch.fcluster(
            sch.linkage(condensed, method="average"), t=4, criterion="maxclust"
        )
        assert adjusted_rand_index(ours.labels, scipy_labels) == pytest.approx(1.0)

    def test_fewer_points_than_clusters(self, rng):
        points = rng.standard_normal((2, 3))
        result = AgglomerativeClusterer(n_clusters=5).fit(points)
        assert result.n_clusters == 2
        assert result.merges == ()

    def test_single_point(self):
        result = AgglomerativeClusterer(n_clusters=1).fit(np.array([[1.0, 2.0]]))
        assert result.n_clusters == 1
        np.testing.assert_array_equal(result.labels, [0])

    def test_duplicate_points(self):
        points = np.ones((6, 2))
        result = AgglomerativeClusterer(n_clusters=2).fit(points)
        assert result.n_clusters == 2  # ties broken arbitrarily but validly

    def test_validation(self):
        with pytest.raises(ValueError):
            AgglomerativeClusterer(n_clusters=0)
        with pytest.raises(ValueError):
            AgglomerativeClusterer(linkage="banana")
        with pytest.raises(ValueError):
            AgglomerativeClusterer(distance_threshold=-1.0)
        with pytest.raises(ValueError):
            AgglomerativeClusterer().fit(np.empty((0, 2)))
