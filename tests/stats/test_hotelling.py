"""Hotelling's two-sample T^2 (paper Equations 14-16)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats as st

from repro.stats.hotelling import critical_distance, hotelling_t2, two_sample_test


class TestStatistic:
    def test_zero_for_equal_means(self):
        mean = np.array([1.0, 2.0, 3.0])
        assert hotelling_t2(mean, mean, np.eye(3), 10.0, 10.0) == 0.0

    def test_equation_14_by_hand(self):
        mean_i = np.array([1.0, 0.0])
        mean_j = np.array([0.0, 0.0])
        inverse = np.diag([2.0, 1.0])
        # scale = 4*6/10 = 2.4; diff' S^-1 diff = 2.0  ->  T^2 = 4.8
        assert hotelling_t2(mean_i, mean_j, inverse, 4.0, 6.0) == pytest.approx(4.8)

    def test_scales_with_weights(self):
        mean_i = np.array([1.0, 0.0])
        mean_j = np.zeros(2)
        small = hotelling_t2(mean_i, mean_j, np.eye(2), 2.0, 2.0)
        large = hotelling_t2(mean_i, mean_j, np.eye(2), 20.0, 20.0)
        assert large == pytest.approx(10.0 * small)

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError):
            hotelling_t2(np.zeros(2), np.ones(2), np.eye(2), 0.0, 1.0)

    def test_invariance_under_linear_transform(self, rng):
        """Theorem 1: T^2(Ax) == T^2(x) for invertible A (full inverse)."""
        p = 4
        points_i = rng.standard_normal((15, p))
        points_j = rng.standard_normal((15, p)) + 0.5
        transform = rng.standard_normal((p, p)) + np.eye(p) * 2.0

        def t2_of(points_a, points_b):
            mean_a, mean_b = points_a.mean(axis=0), points_b.mean(axis=0)
            centered_a = points_a - mean_a
            centered_b = points_b - mean_b
            pooled = (centered_a.T @ centered_a + centered_b.T @ centered_b) / 30.0
            return hotelling_t2(mean_a, mean_b, np.linalg.inv(pooled), 15.0, 15.0)

        original = t2_of(points_i, points_j)
        transformed = t2_of(points_i @ transform.T, points_j @ transform.T)
        assert transformed == pytest.approx(original, rel=1e-8)


class TestCriticalDistance:
    def test_equation_16_form(self):
        p, m_i, m_j, alpha = 3, 15.0, 15.0, 0.05
        df2 = m_i + m_j - p - 1
        expected = (m_i + m_j - 2) * p / df2 * st.f.ppf(1 - alpha, p, df2)
        assert critical_distance(p, m_i, m_j, alpha) == pytest.approx(expected, rel=1e-9)

    def test_decreasing_alpha_grows_distance(self):
        # "As alpha decreases, critical distance c^2 increases."
        values = [critical_distance(3, 10, 10, a) for a in (0.2, 0.1, 0.05, 0.01)]
        assert values == sorted(values)

    def test_infinite_when_no_power(self):
        # m_i + m_j - p - 1 <= 0 -> always merge.
        assert critical_distance(5, 2.0, 2.0, 0.05) == np.inf

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            critical_distance(0, 10, 10, 0.05)
        with pytest.raises(ValueError):
            critical_distance(3, 10, 10, 1.5)


class TestTwoSampleTest:
    def test_same_population_usually_accepts(self, rng):
        rejections = 0
        trials = 200
        for _ in range(trials):
            a = rng.standard_normal((20, 3))
            b = rng.standard_normal((20, 3))
            pooled = ((a - a.mean(0)).T @ (a - a.mean(0)) + (b - b.mean(0)).T @ (b - b.mean(0))) / 40.0
            result = two_sample_test(
                a.mean(0), b.mean(0), np.linalg.inv(pooled), 20.0, 20.0, 0.05
            )
            rejections += result.reject_equal_means
        # Rejection rate should be near the 5% significance level.
        assert rejections / trials < 0.15

    def test_distant_populations_reject(self, rng):
        a = rng.standard_normal((20, 3))
        b = rng.standard_normal((20, 3)) + 5.0
        pooled = ((a - a.mean(0)).T @ (a - a.mean(0)) + (b - b.mean(0)).T @ (b - b.mean(0))) / 40.0
        result = two_sample_test(a.mean(0), b.mean(0), np.linalg.inv(pooled), 20.0, 20.0)
        assert result.reject_equal_means
        assert not result.should_merge

    def test_result_fields(self):
        result = two_sample_test(np.zeros(2), np.zeros(2), np.eye(2), 10.0, 12.0, 0.05)
        assert result.statistic == 0.0
        assert result.df1 == 2.0
        assert result.df2 == 19.0
        assert result.should_merge
