"""Weighted moment estimators (paper Definitions 1-2 and Equation 7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst
from hypothesis.extra.numpy import arrays

from repro.stats.descriptive import (
    as_weights,
    pooled_covariance,
    pooled_scatter,
    weighted_covariance,
    weighted_mean,
    weighted_scatter,
)


class TestAsWeights:
    def test_default_is_ones(self):
        np.testing.assert_array_equal(as_weights(None, 4), np.ones(4))

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            as_weights([1.0, 2.0], 3)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            as_weights([1.0, 0.0], 2)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            as_weights([1.0, np.inf], 2)


class TestWeightedMean:
    def test_unweighted_equals_numpy(self, rng):
        points = rng.standard_normal((20, 5))
        np.testing.assert_allclose(weighted_mean(points), points.mean(axis=0))

    def test_weights_shift_toward_heavy_points(self):
        points = np.array([[0.0], [10.0]])
        mean = weighted_mean(points, [1.0, 9.0])
        assert mean[0] == pytest.approx(9.0)

    def test_equation_2_definition(self, rng):
        points = rng.standard_normal((7, 3))
        scores = rng.uniform(0.5, 3.0, 7)
        expected = (scores[:, None] * points).sum(axis=0) / scores.sum()
        np.testing.assert_allclose(weighted_mean(points, scores), expected)


class TestWeightedScatterAndCovariance:
    def test_equation_3_definition(self, rng):
        points = rng.standard_normal((9, 4))
        scores = rng.uniform(0.5, 2.0, 9)
        center = weighted_mean(points, scores)
        expected = sum(
            s * np.outer(x - center, x - center) for s, x in zip(scores, points)
        )
        np.testing.assert_allclose(weighted_scatter(points, scores), expected)

    def test_covariance_is_normalized_scatter(self, rng):
        points = rng.standard_normal((9, 4))
        scores = rng.uniform(0.5, 2.0, 9)
        np.testing.assert_allclose(
            weighted_covariance(points, scores),
            weighted_scatter(points, scores) / scores.sum(),
        )

    def test_unweighted_matches_numpy_population_covariance(self, rng):
        points = rng.standard_normal((50, 3))
        np.testing.assert_allclose(
            weighted_covariance(points),
            np.cov(points, rowvar=False, bias=True),
            atol=1e-12,
        )

    @given(
        arrays(
            np.float64,
            (6, 3),
            elements=hst.floats(min_value=-100, max_value=100, allow_nan=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_scatter_is_positive_semidefinite(self, points):
        scatter = weighted_scatter(points)
        eigenvalues = np.linalg.eigvalsh(scatter)
        assert eigenvalues.min() >= -1e-6 * max(1.0, abs(eigenvalues).max())

    def test_explicit_center_is_respected(self, rng):
        points = rng.standard_normal((5, 2))
        shifted = weighted_scatter(points, center=np.array([100.0, 100.0]))
        default = weighted_scatter(points)
        assert np.trace(shifted) > np.trace(default)


class TestPooled:
    def test_pooled_scatter_sums_groups(self, rng):
        group_a = rng.standard_normal((10, 3))
        group_b = rng.standard_normal((8, 3))
        scatter, total = pooled_scatter([(group_a, None), (group_b, None)])
        expected = weighted_scatter(group_a) + weighted_scatter(group_b)
        np.testing.assert_allclose(scatter, expected)
        assert total == pytest.approx(18.0)

    def test_pooled_scatter_rejects_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            pooled_scatter(
                [(rng.standard_normal((4, 3)), None), (rng.standard_normal((4, 2)), None)]
            )

    def test_pooled_covariance_equation_7(self):
        s1 = np.eye(2) * 2.0
        s2 = np.eye(2) * 4.0
        # S_pooled = [(m1-1) S1 + (m2-1) S2] / (m1 + m2 - g)
        pooled = pooled_covariance([s1, s2], [5.0, 3.0])
        expected = (4.0 * s1 + 2.0 * s2) / 6.0
        np.testing.assert_allclose(pooled, expected)

    def test_pooled_covariance_degenerate_weights(self):
        # With total weight <= g the sample form is undefined; the
        # weight-proportional average keeps the classifier alive.
        pooled = pooled_covariance([np.eye(2)], [1.0])
        np.testing.assert_allclose(pooled, np.eye(2))

    def test_pooled_covariance_validation(self):
        with pytest.raises(ValueError):
            pooled_covariance([np.eye(2)], [1.0, 2.0])
        with pytest.raises(ValueError):
            pooled_covariance([], [])
        with pytest.raises(ValueError):
            pooled_covariance([np.eye(2)], [0.0])
