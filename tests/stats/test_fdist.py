"""F distribution vs scipy, plus the paper's random-F draw (Equation 20)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats as st
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.stats.fdist import f_cdf, f_pdf, f_ppf, f_sf, f_upper_quantile, random_f


class TestFDistribution:
    @pytest.mark.parametrize("df1", [1, 3, 12])
    @pytest.mark.parametrize("df2", [2, 10, 48])
    @pytest.mark.parametrize("x", [0.1, 0.5, 1.0, 2.5, 10.0])
    def test_cdf_matches_scipy(self, df1, df2, x):
        assert f_cdf(x, df1, df2) == pytest.approx(st.f.cdf(x, df1, df2), abs=1e-12)

    @pytest.mark.parametrize("df1", [2, 6])
    @pytest.mark.parametrize("df2", [4, 20])
    @pytest.mark.parametrize("x", [0.2, 1.0, 3.0])
    def test_pdf_matches_scipy(self, df1, df2, x):
        assert f_pdf(x, df1, df2) == pytest.approx(st.f.pdf(x, df1, df2), rel=1e-10)

    @pytest.mark.parametrize("df1", [1, 3, 12])
    @pytest.mark.parametrize("df2", [5, 48])
    @pytest.mark.parametrize("q", [0.05, 0.5, 0.95, 0.99])
    def test_ppf_matches_scipy(self, df1, df2, q):
        assert f_ppf(q, df1, df2) == pytest.approx(st.f.ppf(q, df1, df2), rel=1e-8)

    def test_sf_is_complement(self):
        assert f_sf(1.7, 3, 14) == pytest.approx(1.0 - f_cdf(1.7, 3, 14))

    def test_upper_quantile_notation(self):
        # F_{p,n}(alpha) is the point exceeded with probability alpha.
        value = f_upper_quantile(0.05, 12, 48)
        assert st.f.sf(value, 12, 48) == pytest.approx(0.05, abs=1e-9)

    def test_table_values(self):
        # The paper's quantile-F for dim 12, pairs of size 30:
        # F_{12, 48}(0.05) ~ 1.96 (Table 2).
        assert f_upper_quantile(0.05, 12, 48) == pytest.approx(1.96, abs=0.01)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            f_cdf(1.0, 0, 5)
        with pytest.raises(ValueError):
            f_ppf(1.5, 3, 5)
        with pytest.raises(ValueError):
            f_upper_quantile(0.0, 3, 5)

    @given(
        hst.integers(min_value=1, max_value=30),
        hst.integers(min_value=2, max_value=60),
        hst.floats(min_value=0.02, max_value=0.98),
    )
    @settings(max_examples=100, deadline=None)
    def test_ppf_cdf_roundtrip(self, df1, df2, q):
        assert f_cdf(f_ppf(q, df1, df2), df1, df2) == pytest.approx(q, abs=1e-8)


class TestRandomF:
    def test_positive(self, rng):
        values = [random_f(12, 48, rng) for _ in range(100)]
        assert all(v > 0 for v in values)

    def test_mean_matches_unnormalized_ratio(self, rng):
        # E[chi2_12 / chi2_48] = 12 * E[1/chi2_48] = 12 / 46 (Eq. 20 is
        # deliberately unnormalized).
        values = np.array([random_f(12, 48, rng) for _ in range(20_000)])
        assert values.mean() == pytest.approx(12.0 / 46.0, rel=0.05)

    def test_rejects_bad_dfs(self, rng):
        with pytest.raises(ValueError):
            random_f(0, 5, rng)
