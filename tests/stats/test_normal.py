"""Multivariate normal log-density helpers vs scipy."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.stats.normal import log_mvn_density, mahalanobis_sq, mvn_density


class TestMahalanobis:
    def test_identity_is_squared_euclidean(self):
        x = np.array([3.0, 4.0])
        assert mahalanobis_sq(x, np.zeros(2), np.eye(2)) == pytest.approx(25.0)

    def test_diagonal_weights(self):
        x = np.array([1.0, 1.0])
        inverse = np.diag([4.0, 0.25])
        assert mahalanobis_sq(x, np.zeros(2), inverse) == pytest.approx(4.25)


class TestDensity:
    def test_matches_scipy(self, rng):
        mean = rng.standard_normal(3)
        raw = rng.standard_normal((10, 3))
        covariance = raw.T @ raw / 10.0 + np.eye(3) * 0.1
        x = rng.standard_normal(3)
        expected = multivariate_normal(mean=mean, cov=covariance).logpdf(x)
        computed = log_mvn_density(x, mean, np.linalg.inv(covariance))
        assert computed == pytest.approx(expected, rel=1e-9)

    def test_explicit_log_det(self):
        covariance = np.diag([2.0, 3.0])
        x = np.array([1.0, -1.0])
        with_log_det = log_mvn_density(
            x, np.zeros(2), np.linalg.inv(covariance), float(np.log(6.0))
        )
        without = log_mvn_density(x, np.zeros(2), np.linalg.inv(covariance))
        assert with_log_det == pytest.approx(without)

    def test_density_exponentiates(self):
        x = np.zeros(2)
        assert mvn_density(x, x, np.eye(2)) == pytest.approx(1.0 / (2.0 * np.pi))

    def test_rejects_non_positive_definite(self):
        # Odd dimension so the negative-definite matrix has negative det.
        with pytest.raises(np.linalg.LinAlgError):
            log_mvn_density(np.zeros(3), np.zeros(3), -np.eye(3))
