"""Chi-square distribution vs scipy, plus the effective-radius semantics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats as st
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.stats.chi2 import chi2_cdf, chi2_pdf, chi2_ppf, chi2_sf, effective_radius


class TestChi2Distribution:
    @pytest.mark.parametrize("df", [1, 2, 3, 7, 16, 48])
    @pytest.mark.parametrize("x", [0.01, 0.5, 1.0, 5.0, 20.0, 100.0])
    def test_cdf_matches_scipy(self, df, x):
        assert chi2_cdf(x, df) == pytest.approx(st.chi2.cdf(x, df), abs=1e-12)

    @pytest.mark.parametrize("df", [1, 2, 5, 12])
    @pytest.mark.parametrize("x", [0.1, 1.0, 4.0, 30.0])
    def test_pdf_matches_scipy(self, df, x):
        assert chi2_pdf(x, df) == pytest.approx(st.chi2.pdf(x, df), rel=1e-10)

    @pytest.mark.parametrize("df", [1, 3, 9, 16])
    @pytest.mark.parametrize("q", [0.01, 0.05, 0.5, 0.95, 0.99])
    def test_ppf_matches_scipy(self, df, q):
        assert chi2_ppf(q, df) == pytest.approx(st.chi2.ppf(q, df), rel=1e-9)

    def test_sf_is_complement(self):
        assert chi2_sf(4.2, 6) == pytest.approx(1.0 - chi2_cdf(4.2, 6))

    def test_pdf_edge_cases(self):
        assert chi2_pdf(-1.0, 3) == 0.0
        assert chi2_pdf(0.0, 2) == 0.5  # exponential(1/2) at 0
        assert chi2_pdf(0.0, 1) == np.inf
        assert chi2_pdf(0.0, 4) == 0.0

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            chi2_cdf(1.0, 0)

    @given(hst.integers(min_value=1, max_value=64), hst.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=100, deadline=None)
    def test_ppf_cdf_roundtrip(self, df, q):
        assert chi2_cdf(chi2_ppf(q, df), df) == pytest.approx(q, abs=1e-9)


class TestEffectiveRadius:
    def test_matches_paper_semantics(self):
        # chi2_p(alpha) = the 100(1 - alpha) percentile (Lemma 1).
        assert effective_radius(3, 0.05) == pytest.approx(st.chi2.ppf(0.95, 3), rel=1e-9)

    def test_decreasing_alpha_grows_radius(self):
        # "As alpha decreases, a given effective radius increases."
        radii = [effective_radius(7, alpha) for alpha in (0.2, 0.1, 0.05, 0.01)]
        assert radii == sorted(radii)

    def test_coverage_of_gaussian_data(self, rng):
        # ~95% of standard normal points fall inside the alpha=0.05 radius.
        dim = 4
        points = rng.standard_normal((20_000, dim))
        radius = effective_radius(dim, 0.05)
        inside = np.sum(np.einsum("ij,ij->i", points, points) < radius)
        assert inside / 20_000 == pytest.approx(0.95, abs=0.01)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            effective_radius(0, 0.05)
        with pytest.raises(ValueError):
            effective_radius(3, 0.0)
        with pytest.raises(ValueError):
            effective_radius(3, 1.0)
