"""Cross-validate the from-scratch special functions against scipy."""

from __future__ import annotations

import math

import numpy as np
import pytest
import scipy.special as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.special import (
    inverse_regularized_incomplete_beta,
    inverse_regularized_lower_gamma,
    log_beta,
    log_gamma,
    regularized_incomplete_beta,
    regularized_lower_gamma,
    regularized_upper_gamma,
)


class TestLogGamma:
    @pytest.mark.parametrize("x", [0.1, 0.5, 1.0, 1.5, 2.0, 3.7, 10.0, 100.0, 1234.5])
    def test_matches_scipy(self, x):
        assert log_gamma(x) == pytest.approx(sp.gammaln(x), rel=1e-12)

    def test_integer_factorials(self):
        # Gamma(n) = (n-1)!
        for n in range(1, 15):
            assert math.exp(log_gamma(n)) == pytest.approx(math.factorial(n - 1), rel=1e-10)

    def test_half_integer(self):
        # Gamma(1/2) = sqrt(pi)
        assert math.exp(log_gamma(0.5)) == pytest.approx(math.sqrt(math.pi), rel=1e-12)

    @pytest.mark.parametrize("bad", [0.0, -1.0, -0.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            log_gamma(bad)

    @given(st.floats(min_value=0.05, max_value=500.0))
    @settings(max_examples=200, deadline=None)
    def test_recurrence(self, x):
        # ln Gamma(x + 1) = ln Gamma(x) + ln x
        assert log_gamma(x + 1.0) == pytest.approx(log_gamma(x) + math.log(x), rel=1e-9, abs=1e-9)


class TestRegularizedGamma:
    @pytest.mark.parametrize("a", [0.5, 1.0, 2.5, 8.0, 50.0])
    @pytest.mark.parametrize("x", [0.0, 0.1, 1.0, 5.0, 30.0, 200.0])
    def test_matches_scipy(self, a, x):
        assert regularized_lower_gamma(a, x) == pytest.approx(sp.gammainc(a, x), abs=1e-12)

    def test_upper_is_complement(self):
        assert regularized_upper_gamma(3.0, 2.0) == pytest.approx(
            1.0 - regularized_lower_gamma(3.0, 2.0)
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            regularized_lower_gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_lower_gamma(1.0, -1.0)

    @given(
        st.floats(min_value=0.2, max_value=50.0),
        st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_is_a_cdf(self, a, x):
        value = regularized_lower_gamma(a, x)
        assert 0.0 <= value <= 1.0
        # Monotone in x.
        assert regularized_lower_gamma(a, x + 1.0) >= value - 1e-12


class TestIncompleteBeta:
    @pytest.mark.parametrize("a", [0.5, 1.0, 3.0, 10.0])
    @pytest.mark.parametrize("b", [0.5, 2.0, 7.5])
    @pytest.mark.parametrize("x", [0.0, 0.05, 0.3, 0.5, 0.9, 1.0])
    def test_matches_scipy(self, a, b, x):
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            sp.betainc(a, b, x), abs=1e-12
        )

    def test_log_beta_matches_scipy(self):
        for a, b in [(0.5, 0.5), (1.0, 3.0), (12.0, 7.0), (100.0, 0.3)]:
            assert log_beta(a, b) == pytest.approx(sp.betaln(a, b), rel=1e-12)

    def test_symmetry(self):
        # I_x(a, b) = 1 - I_{1-x}(b, a)
        value = regularized_incomplete_beta(2.0, 5.0, 0.3)
        complement = regularized_incomplete_beta(5.0, 2.0, 0.7)
        assert value == pytest.approx(1.0 - complement, abs=1e-12)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            regularized_incomplete_beta(-1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            regularized_incomplete_beta(1.0, 1.0, 1.5)


class TestInverses:
    @given(
        st.floats(min_value=0.3, max_value=40.0),
        st.floats(min_value=0.001, max_value=0.999),
    )
    @settings(max_examples=150, deadline=None)
    def test_gamma_inverse_roundtrip(self, a, probability):
        x = inverse_regularized_lower_gamma(a, probability)
        assert regularized_lower_gamma(a, x) == pytest.approx(probability, abs=1e-9)

    @given(
        st.floats(min_value=0.3, max_value=25.0),
        st.floats(min_value=0.3, max_value=25.0),
        st.floats(min_value=0.001, max_value=0.999),
    )
    @settings(max_examples=150, deadline=None)
    def test_beta_inverse_roundtrip(self, a, b, probability):
        x = inverse_regularized_incomplete_beta(a, b, probability)
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(probability, abs=1e-9)

    def test_edge_probabilities(self):
        assert inverse_regularized_lower_gamma(2.0, 0.0) == 0.0
        assert inverse_regularized_lower_gamma(2.0, 1.0) == np.inf
        assert inverse_regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert inverse_regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            inverse_regularized_lower_gamma(1.0, 1.5)
        with pytest.raises(ValueError):
            inverse_regularized_incomplete_beta(1.0, 1.0, -0.1)
