"""ResultTable rendering and CSV export."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import ResultTable


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable("Demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(22, "yy")
        rendered = table.render()
        assert "=== Demo ===" in rendered
        assert "22" in rendered
        lines = rendered.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_row_length_validation(self):
        table = ResultTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_notes_appended(self):
        table = ResultTable("Demo", ["a"], notes=["a note"])
        table.add_row(1)
        assert table.render().endswith("a note")

    def test_empty_table_renders(self):
        table = ResultTable("Empty", ["col"])
        assert "Empty" in table.render()

    def test_csv_round_trip(self, tmp_path):
        table = ResultTable("Demo", ["a", "b"], notes=["hello"])
        table.add_row(1, 2.5)
        path = tmp_path / "out" / "demo.csv"
        table.to_csv(path)
        content = path.read_text()
        assert content.startswith("a,b")
        assert "1,2.5" in content
        assert "# hello" in content

    def test_print_outputs(self, capsys):
        table = ResultTable("Demo", ["a"])
        table.add_row("value")
        table.print()
        assert "value" in capsys.readouterr().out
