"""Experiment library: small-scale smoke + structural checks.

The full-scale shape assertions live in ``benchmarks/``; these tests
verify the library API itself — result structures, table generation and
basic sanity — at a scale that keeps the unit suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ProtocolConfig,
    ProtocolData,
    classification,
    fig05,
    fig06,
    fig07,
    quality,
    t2_accuracy,
)

SMALL = ProtocolConfig(
    n_categories=4,
    images_per_category=20,
    image_size=14,
    n_queries=4,
    k=20,
    n_iterations=2,
)


@pytest.fixture(scope="module")
def small_data():
    return ProtocolData.build(SMALL)


class TestProtocol:
    def test_build_shapes(self, small_data):
        assert small_data.color_database.size == 80
        assert small_data.color_database.dimension == 3
        assert small_data.texture_database.dimension == 4
        assert small_data.query_indices.shape == (4,)

    def test_database_for(self, small_data):
        assert small_data.database_for("color") is small_data.color_database
        assert small_data.database_for("texture") is small_data.texture_database
        with pytest.raises(ValueError):
            small_data.database_for("banana")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProtocolConfig(n_categories=0)
        with pytest.raises(ValueError):
            ProtocolConfig(k=0)


class TestFig05:
    def test_run_small(self):
        result = fig05.run(n_points=3000, seed=1)
        assert result.n_retrieved == result.n_in_balls
        assert result.in_gap == 0
        assert 0.8 < result.agreement <= 1.0
        table = result.as_table()
        assert "Figure 5" in table.title
        assert len(table.rows) == 6


class TestFig06:
    def test_run_small(self):
        result = fig06.run(dim=6, repeats=2)
        assert result.diagonal_seconds > 0
        assert result.inverse_seconds > 0
        assert result.speedup > 0
        assert "Figure 6" in result.as_table().title

    def test_dimension_sweep_structure(self):
        results = fig06.dimension_sweep(dims=(4, 8), repeats=2)
        assert [r.dim for r in results] == [4, 8]
        for result in results:
            assert result.diagonal_seconds > 0


class TestFig07:
    def test_run_small(self, small_data):
        result = fig07.run(small_data.color_database, k=20, n_iterations=2)
        assert len(result.multipoint_io) == len(result.centroid_io)
        assert result.scan_pages > 0
        table = result.as_table()
        assert len(table.rows) == len(result.multipoint_io)


class TestQuality:
    def test_pr_curves_structure(self, small_data):
        result = quality.pr_curves(small_data, "color")
        assert len(result.batch.curves) == SMALL.n_iterations + 1
        assert len(result.mean_precision_per_iteration) == SMALL.n_iterations + 1
        assert len(result.as_table().rows) > 0

    def test_comparison_structure(self, small_data):
        result = quality.comparison(small_data, "color")
        assert set(result.results) == {"qcluster", "qex", "qpm"}
        recalls = result.series("mean_recall")
        # Paired protocol: same iteration 0 everywhere.
        values = {round(float(series[0]), 9) for series in recalls.values()}
        assert len(values) == 1
        tables = result.as_tables()
        assert len(tables) == 2
        assert any("Figure 10" in t.title for t in tables)

    def test_headline_structure(self, small_data):
        result = quality.headline(small_data)
        assert len(result.improvements) == 8  # 2 features x 2 baselines x 2 metrics
        assert np.isfinite(result.pooled("qex", "recall"))
        assert len(result.as_table().rows) == 12


class TestClassification:
    def test_sweep_structure(self):
        result = classification.sweep(
            "spherical", "diagonal", separations=(0.5, 2.5), dimensions=(6, 3), n_trials=1
        )
        assert set(result.errors) == {0.5, 2.5}
        assert set(result.errors[0.5]) == {6, 3}
        for per_dim in result.errors.values():
            for error in per_dim.values():
                assert 0.0 <= error <= 1.0

    def test_error_decreases_with_separation(self):
        near = classification.error_rate("spherical", "diagonal", 0.5, 6, seed=0)
        far = classification.error_rate("spherical", "diagonal", 4.0, 6, seed=0)
        assert far < near

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            classification.sweep("cubic", "diagonal")


class TestT2Accuracy:
    def test_run_table_structure(self):
        result = t2_accuracy.run_table(True, "diagonal", n_pairs=20)
        assert set(result.per_dim) == set(t2_accuracy.DIMENSIONS)
        for variation, mean_stat, quantile, errors in result.per_dim.values():
            assert 0.0 < variation <= 1.0
            assert mean_stat > 0
            assert quantile > 0
            assert 0.0 <= errors <= 1.0
        assert "Table 2" in result.as_table().title

    def test_different_means_larger_statistics(self):
        same = t2_accuracy.run_table(True, "diagonal", n_pairs=20)
        different = t2_accuracy.run_table(False, "diagonal", n_pairs=20)
        for dim in t2_accuracy.DIMENSIONS:
            assert different.per_dim[dim][1] > same.per_dim[dim][1]

    def test_qq_data_structure(self):
        result = t2_accuracy.qq_data("diagonal", n_each=10)
        assert result.statistics.shape == (20,)
        assert result.criticals.shape == (20,)
        assert result.same_mean.sum() == 10
        sorted_statistics, _, sorted_criticals = result.sorted_pairs()
        assert np.all(np.diff(sorted_statistics) >= 0)
        assert np.all(np.diff(sorted_criticals) >= 0)
        assert "Q-Q" in result.as_table().title
