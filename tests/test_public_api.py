"""Public-API consistency: __all__ resolves, and everything is documented."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.stats",
    "repro.clustering",
    "repro.features",
    "repro.datasets",
    "repro.index",
    "repro.retrieval",
    "repro.baselines",
    "repro.extensions",
    "repro.experiments",
    "repro.service",
    "repro.obs",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package_name}.{name} listed but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_have_docstrings(package_name):
    module = importlib.import_module(package_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package_name}: undocumented public API: {undocumented}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_module_docstrings_exist(package_name):
    module = importlib.import_module(package_name)
    assert (module.__doc__ or "").strip(), f"{package_name} lacks a module docstring"


def test_public_classes_have_documented_public_methods():
    """Spot-check the main entry points for documented methods."""
    from repro import ImageRetrievalSystem, QclusterEngine
    from repro.retrieval import FeedbackSession

    for cls in (ImageRetrievalSystem, QclusterEngine, FeedbackSession):
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name} undocumented"
