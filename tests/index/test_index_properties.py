"""Property-based tests: the tree agrees with the scan on arbitrary data."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst
from hypothesis.extra.numpy import arrays

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.index.hybridtree import HybridTree
from repro.index.linear import LinearScan

data_matrices = arrays(
    np.float64,
    hst.tuples(hst.integers(min_value=5, max_value=120), hst.just(3)),
    elements=hst.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)


def single_point_query(center: np.ndarray) -> DisjunctiveQuery:
    return DisjunctiveQuery(
        [QueryPoint(center=center, inverse=np.eye(center.shape[0]), weight=1.0)]
    )


def two_point_query(a: np.ndarray, b: np.ndarray) -> DisjunctiveQuery:
    return DisjunctiveQuery(
        [
            QueryPoint(center=a, inverse=np.eye(a.shape[0]), weight=2.0),
            QueryPoint(center=b, inverse=np.eye(b.shape[0]), weight=1.0),
        ]
    )


class TestTreeScanAgreement:
    @given(data_matrices, hst.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_knn_distances_match(self, vectors, k):
        tree = HybridTree(vectors, leaf_capacity=8)
        scan = LinearScan(vectors)
        query = single_point_query(vectors[0])
        tree_result = tree.knn(query, k)
        scan_result = scan.knn(query, k)
        np.testing.assert_allclose(
            np.sort(tree_result.distances), np.sort(scan_result.distances), atol=1e-8
        )

    @given(data_matrices)
    @settings(max_examples=30, deadline=None)
    def test_multipoint_knn_matches(self, vectors):
        tree = HybridTree(vectors, leaf_capacity=8)
        scan = LinearScan(vectors)
        query = two_point_query(vectors[0], vectors[-1])
        k = min(8, vectors.shape[0])
        tree_result = tree.knn(query, k)
        scan_result = scan.knn(query, k)
        np.testing.assert_allclose(
            np.sort(tree_result.distances), np.sort(scan_result.distances), atol=1e-8
        )

    @given(data_matrices, hst.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_range_query_matches(self, vectors, radius):
        tree = HybridTree(vectors, leaf_capacity=8)
        scan = LinearScan(vectors)
        query = single_point_query(vectors[0])
        tree_result = tree.range_query(query, radius)
        scan_result = scan.range_query(query, radius)
        np.testing.assert_array_equal(
            np.sort(tree_result.indices), np.sort(scan_result.indices)
        )

    @given(data_matrices)
    @settings(max_examples=30, deadline=None)
    def test_knn_result_is_sorted_and_exactly_k(self, vectors):
        tree = HybridTree(vectors, leaf_capacity=8)
        k = min(6, vectors.shape[0])
        result = tree.knn(single_point_query(vectors[0]), k)
        assert result.indices.shape == (k,)
        assert np.all(np.diff(result.distances) >= -1e-12)
        assert result.distances[0] == pytest.approx(0.0, abs=1e-12)
