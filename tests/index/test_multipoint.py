"""Session-level searchers: cached multipoint vs per-centroid baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.index.hybridtree import HybridTree
from repro.index.multipoint import CentroidSearcher, MultipointSearcher


def query_of(vectors, indices, weight=1.0):
    dim = vectors.shape[1]
    return DisjunctiveQuery(
        [
            QueryPoint(center=vectors[i], inverse=np.eye(dim), weight=weight)
            for i in indices
        ]
    )


@pytest.fixture
def tree(rng):
    vectors = np.vstack(
        [rng.normal(offset, 1.0, (300, 3)) for offset in (0.0, 15.0)]
    )
    return HybridTree(vectors, leaf_capacity=16)


class TestMultipointSearcher:
    def test_cache_reduces_io_across_iterations(self, tree):
        searcher = MultipointSearcher(tree)
        query = query_of(tree.vectors, [0, 350])
        first = searcher.search(query, 50)
        # A slightly refined query revisits mostly the same nodes.
        refined = query_of(tree.vectors, [1, 351])
        second = searcher.search(refined, 50)
        assert second.cost.io_accesses < first.cost.io_accesses
        assert second.cost.cached_accesses > 0
        assert searcher.log.io_accesses[0] > searcher.log.io_accesses[1]

    def test_reset_clears_cache(self, tree):
        searcher = MultipointSearcher(tree)
        query = query_of(tree.vectors, [0])
        searcher.search(query, 10)
        assert searcher.cache_size > 0
        searcher.reset()
        assert searcher.cache_size == 0
        assert searcher.log.per_iteration == []

    def test_results_are_exact(self, tree):
        searcher = MultipointSearcher(tree)
        query = query_of(tree.vectors, [0, 350])
        result = searcher.search(query, 20)
        brute = np.argsort(query.distances(tree.vectors))[:20]
        np.testing.assert_allclose(
            np.sort(result.distances),
            np.sort(query.distances(tree.vectors)[brute]),
            rtol=1e-9,
        )


class TestCentroidSearcher:
    def test_costs_scale_with_representatives(self, tree):
        searcher = CentroidSearcher(tree)
        single = searcher.search(query_of(tree.vectors, [0]), 20)
        searcher.reset()
        triple = searcher.search(query_of(tree.vectors, [0, 350, 100]), 20)
        assert triple.cost.io_accesses > single.cost.io_accesses

    def test_multipoint_cheaper_over_session(self, tree):
        """The Figure 7 claim: cached multipoint beats centroid re-query."""
        queries = [
            query_of(tree.vectors, [i, 350 + i]) for i in range(5)
        ]
        multipoint = MultipointSearcher(tree)
        centroid = CentroidSearcher(tree)
        for query in queries:
            multipoint.search(query, 50)
            centroid.search(query, 50)
        assert multipoint.log.total_io < centroid.log.total_io
        # And the gap widens after the first iteration.
        assert sum(multipoint.log.io_accesses[1:]) < sum(centroid.log.io_accesses[1:])

    def test_ranking_still_uses_aggregate_distance(self, tree):
        searcher = CentroidSearcher(tree)
        query = query_of(tree.vectors, [0, 350])
        result = searcher.search(query, 10)
        distances = query.distances(tree.vectors)[result.indices]
        np.testing.assert_allclose(result.distances, distances, rtol=1e-9)
        assert np.all(np.diff(result.distances) >= -1e-12)
