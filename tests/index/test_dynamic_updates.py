"""Dynamic insert/delete on the tree index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.index.hybridtree import HybridTree


def euclidean_query(center: np.ndarray) -> DisjunctiveQuery:
    return DisjunctiveQuery(
        [QueryPoint(center=center, inverse=np.eye(center.shape[0]), weight=1.0)]
    )


def brute_knn(vectors: np.ndarray, alive: np.ndarray, center: np.ndarray, k: int):
    live_indices = np.nonzero(alive)[0]
    distances = np.sum((vectors[live_indices] - center) ** 2, axis=1)
    order = np.argsort(distances, kind="stable")[:k]
    return live_indices[order], distances[order]


class TestInsert:
    def test_inserted_vector_is_found(self, rng):
        tree = HybridTree(rng.standard_normal((50, 3)), leaf_capacity=8)
        new_vector = np.array([100.0, 100.0, 100.0])
        index = tree.insert(new_vector)
        assert index == 50
        result = tree.knn(euclidean_query(new_vector), 1)
        assert result.indices[0] == index
        assert result.distances[0] == pytest.approx(0.0, abs=1e-12)

    def test_many_inserts_match_brute_force(self, rng):
        base = rng.standard_normal((40, 3))
        tree = HybridTree(base, leaf_capacity=8)
        for vector in rng.standard_normal((60, 3)) * 2.0:
            tree.insert(vector)
        assert tree.size == 100
        center = rng.standard_normal(3)
        tree_result = tree.knn(euclidean_query(center), 10)
        brute_indices, brute_distances = brute_knn(
            tree.vectors, tree._alive, center, 10
        )
        np.testing.assert_allclose(
            np.sort(tree_result.distances), np.sort(brute_distances), atol=1e-9
        )

    def test_leaf_splits_keep_capacity(self, rng):
        tree = HybridTree(rng.standard_normal((10, 2)), leaf_capacity=4)
        for vector in rng.standard_normal((50, 2)):
            tree.insert(vector)

        def max_leaf(node):
            if node.is_leaf:
                return node.indices.shape[0]
            return max(max_leaf(node.left), max_leaf(node.right))

        # Duplicate-heavy leaves may exceed capacity (unsplittable), but
        # random data must stay bounded.
        assert max_leaf(tree.root) <= tree.leaf_capacity

    def test_insert_validation(self, rng):
        tree = HybridTree(rng.standard_normal((10, 3)), leaf_capacity=4)
        with pytest.raises(ValueError):
            tree.insert(np.zeros(4))
        with pytest.raises(ValueError):
            tree.insert(np.array([1.0, np.nan, 0.0]))


class TestDelete:
    def test_deleted_vector_not_returned(self, rng):
        vectors = rng.standard_normal((30, 3))
        tree = HybridTree(vectors, leaf_capacity=8)
        target = euclidean_query(vectors[5])
        assert tree.knn(target, 1).indices[0] == 5
        assert tree.delete(5) is True
        assert tree.knn(target, 1).indices[0] != 5
        assert tree.size == 29

    def test_double_delete_reports_false(self, rng):
        tree = HybridTree(rng.standard_normal((10, 3)), leaf_capacity=4)
        assert tree.delete(3) is True
        assert tree.delete(3) is False

    def test_delete_then_range_query(self, rng):
        vectors = rng.standard_normal((40, 2))
        tree = HybridTree(vectors, leaf_capacity=8)
        tree.delete(0)
        result = tree.range_query(euclidean_query(vectors[0]), radius=100.0)
        assert 0 not in result.indices
        assert result.indices.shape[0] == 39

    def test_delete_everything(self, rng):
        tree = HybridTree(rng.standard_normal((5, 2)), leaf_capacity=4)
        for index in range(5):
            tree.delete(index)
        result = tree.knn(euclidean_query(np.zeros(2)), 3)
        assert result.indices.shape == (0,)

    def test_index_out_of_range(self, rng):
        tree = HybridTree(rng.standard_normal((5, 2)), leaf_capacity=4)
        with pytest.raises(IndexError):
            tree.delete(99)


class TestChurn:
    def test_interleaved_inserts_and_deletes(self, rng):
        tree = HybridTree(rng.standard_normal((20, 3)), leaf_capacity=8)
        for step in range(40):
            if step % 3 == 0 and tree.size > 5:
                live = np.nonzero(tree._alive)[0]
                tree.delete(int(live[rng.integers(live.shape[0])]))
            else:
                tree.insert(rng.standard_normal(3) * 3.0)
        center = rng.standard_normal(3)
        tree_result = tree.knn(euclidean_query(center), 8)
        brute_indices, brute_distances = brute_knn(tree.vectors, tree._alive, center, 8)
        np.testing.assert_allclose(
            np.sort(tree_result.distances), np.sort(brute_distances), atol=1e-9
        )
