"""Spill / RP trees: structure, defeatist soundness, degenerate leaves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.core.progressive import exact_top_k
from repro.faults import FaultPlan, FaultSpec, InjectedFault, activate_faults
from repro.index.hybridtree import HybridTree
from repro.index.linear import LinearScan
from repro.index.spill import SpillTree, SpillTreeConfig


def single_query(center, dim=None):
    center = np.asarray(center, dtype=float)
    return DisjunctiveQuery(
        [QueryPoint(center=center, inverse=np.eye(center.shape[0]), weight=1.0)]
    )


def multipoint_query(centers):
    dim = np.asarray(centers[0]).shape[0]
    return DisjunctiveQuery(
        [
            QueryPoint(center=np.asarray(c, dtype=float), inverse=np.eye(dim), weight=1.0)
            for c in centers
        ]
    )


def clustered(rng, n_per=150, dim=4, offsets=(0.0, 12.0, -12.0)):
    return np.vstack(
        [rng.normal(offset, 0.6, (n_per, dim)) for offset in offsets]
    )


def gathered(node):
    """Union of leaf indices in the subtree rooted at ``node``."""
    if node.is_leaf:
        return set(map(int, node.indices))
    return gathered(node.left) | gathered(node.right)


class TestStructure:
    def test_leaf_capacity_respected(self, rng):
        vectors = rng.standard_normal((500, 4))
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=32))
        assert max(tree.leaf_sizes()) <= 32

    def test_spill_children_overlap_by_the_buffer(self, rng):
        """Left holds projections <= high, right >= low, and together
        they cover the parent — the defining spill-tree invariant."""
        vectors = rng.standard_normal((400, 4))
        tree = SpillTree(vectors, SpillTreeConfig(spill=0.3, leaf_capacity=32))

        def check(node, members):
            if node.is_leaf:
                assert set(map(int, node.indices)) == members
                return
            assert node.low <= node.route <= node.high
            left, right = gathered(node.left), gathered(node.right)
            assert left | right == members
            for i in left:
                assert node.project(vectors[i]) <= node.high
            for i in right:
                assert node.project(vectors[i]) >= node.low
            check(node.left, left)
            check(node.right, right)

        check(tree.root, set(range(400)))
        # A 0.3 spill with real spread must actually share points.
        shared = gathered(tree.root.left) & gathered(tree.root.right)
        assert shared

    def test_zero_spill_is_nearly_a_partition(self, rng):
        """No spill buffer: only rows tied exactly at a median can land
        in both children, so duplication stays negligible."""
        vectors = rng.standard_normal((300, 3))
        tree = SpillTree(vectors, SpillTreeConfig(spill=0.0, leaf_capacity=32))
        sizes = tree.leaf_sizes()
        assert gathered(tree.root) == set(range(300))  # full coverage
        assert sum(sizes) - 300 <= tree.stats()["n_leaves"]

    def test_rp_rule_builds_and_is_seeded(self, rng):
        vectors = rng.standard_normal((300, 6))
        config = SpillTreeConfig(rule="rp", leaf_capacity=32, seed=5)
        first, second = SpillTree(vectors, config), SpillTree(vectors, config)
        assert first.leaf_sizes() == second.leaf_sizes()
        result_a = first.defeatist_search(single_query(vectors[0]), 10)
        result_b = second.defeatist_search(single_query(vectors[0]), 10)
        np.testing.assert_array_equal(result_a.indices, result_b.indices)

    def test_stats_surface(self, rng):
        tree = SpillTree(rng.standard_normal((200, 3)), SpillTreeConfig(leaf_capacity=32))
        stats = tree.stats()
        for key in ("rule", "spill", "max_leaves", "n_nodes", "n_leaves",
                    "leaf_capacity", "calibrated_recall"):
            assert key in stats
        assert stats["n_leaves"] == len(tree.leaf_sizes())


class TestDefeatistSearch:
    def test_ranking_is_exact_over_reached_candidates(self, rng):
        """The only approximation is *which* rows are scored: over the
        reached candidate set the ranking must equal exact_top_k with
        the shared (distance, id) tie-break."""
        vectors = clustered(rng)
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=32))
        query = multipoint_query([vectors[10], vectors[200]])
        result = tree.defeatist_search(query, 15)
        candidates, _ = tree.candidates_for(query)
        distances = query.distances(vectors[candidates])
        order = exact_top_k(distances, 15, tie_break=candidates)
        np.testing.assert_array_equal(result.indices, candidates[order])
        np.testing.assert_array_equal(result.distances, distances[order])
        assert np.all(np.diff(result.distances) >= 0)

    def test_high_recall_on_separated_clusters(self, rng):
        vectors = clustered(rng)
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=32))
        scan = LinearScan(vectors)
        query = single_query(vectors[5])
        approximate = tree.defeatist_search(query, 10)
        exact = scan.knn(query, 10)
        overlap = set(map(int, approximate.indices)) & set(map(int, exact.indices))
        assert len(overlap) >= 8

    def test_spill_buys_recall(self, rng):
        vectors = rng.standard_normal((600, 6))
        scan = LinearScan(vectors)
        queries = [single_query(vectors[i]) for i in (3, 77, 240, 511)]

        def mean_recall(spill):
            tree = SpillTree(
                vectors, SpillTreeConfig(spill=spill, leaf_capacity=32, max_leaves=6)
            )
            hits = 0
            for query in queries:
                exact = set(map(int, scan.knn(query, 10).indices))
                got = set(map(int, tree.defeatist_search(query, 10).indices))
                hits += len(exact & got)
            return hits / (10 * len(queries))

        assert mean_recall(0.4) > mean_recall(0.0)

    def test_single_leaf_classic_defeatist(self, rng):
        vectors = rng.standard_normal((300, 3))
        tree = SpillTree(
            vectors, SpillTreeConfig(spill=0.0, max_leaves=1, leaf_capacity=32)
        )
        result = tree.defeatist_search(single_query(vectors[0]), 5)
        assert result.n_candidates <= 32
        assert result.indices.shape == (5,)

    def test_cost_accounting(self, rng):
        vectors = rng.standard_normal((400, 3))
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=32))
        result = tree.defeatist_search(single_query(vectors[0]), 10)
        assert result.cost.node_accesses > 0
        assert result.cost.distance_evaluations == result.n_candidates
        assert result.cost.candidates_pruned == 400 - result.n_candidates
        assert result.n_candidates < 400  # defeatist search must prune


class TestDegenerateLeaves:
    """Satellite soundness: duplicate rows, zero-variance dims, k > n.

    Both trees — the exact HybridTree and the approximate SpillTree —
    must stay sound on inputs whose split heuristics degenerate.
    """

    def test_duplicate_rows_spill_tree(self):
        vectors = np.ones((60, 3))
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=16))
        # Zero spread: the build must stop at one oversized leaf
        # instead of recursing forever.
        assert tree.leaf_sizes() == [60]
        result = tree.defeatist_search(single_query(np.ones(3)), 5)
        np.testing.assert_array_equal(result.indices, np.arange(5))  # id tie-break
        np.testing.assert_array_equal(result.distances, np.zeros(5))

    def test_duplicate_rows_hybrid_tree(self):
        vectors = np.ones((60, 3))
        tree = HybridTree(vectors, leaf_capacity=16)
        result = tree.knn(single_query(np.ones(3)), 5)
        assert result.indices.shape == (5,)
        np.testing.assert_array_equal(result.distances, np.zeros(5))

    def test_zero_variance_dimensions(self, rng):
        # Only coordinate 1 varies; every split heuristic must lock
        # onto it and both trees must agree with the linear scan.
        vectors = np.zeros((200, 4))
        vectors[:, 1] = rng.standard_normal(200)
        query = single_query(vectors[17])
        exact = LinearScan(vectors).knn(query, 10)
        hybrid = HybridTree(vectors, leaf_capacity=16).knn(query, 10)
        np.testing.assert_array_equal(
            np.sort(hybrid.indices), np.sort(exact.indices)
        )
        for rule in ("kd", "rp"):
            tree = SpillTree(
                vectors, SpillTreeConfig(rule=rule, leaf_capacity=16)
            )
            result = tree.defeatist_search(query, 10)
            overlap = set(map(int, result.indices)) & set(map(int, exact.indices))
            assert len(overlap) >= 8, rule

    def test_leaves_smaller_than_k(self, rng):
        """k above the database size: both trees return every row once,
        ranked, rather than raising or padding."""
        vectors = rng.standard_normal((7, 3))
        query = single_query(vectors[0])
        hybrid = HybridTree(vectors, leaf_capacity=4).knn(query, 20)
        assert hybrid.indices.shape == (7,)
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=4))
        result = tree.defeatist_search(query, 20)
        assert len(set(map(int, result.indices))) == result.indices.shape[0]
        assert result.indices.shape[0] <= 7
        assert np.all(np.diff(result.distances) >= 0)

    def test_median_ties_fall_back_to_even_split(self):
        # >half the rows share the median value on every coordinate:
        # the quantile split would put everything in one child, so the
        # build must fall back to the spill-free even split and still
        # terminate with bounded leaves.
        vectors = np.zeros((128, 2))
        vectors[:32, 0] = np.linspace(1.0, 2.0, 32)
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=16, spill=0.4))
        # The root split hit the tie guard: a spill-free cut whose
        # children share nothing (low == route == high).
        assert tree.root.low == tree.root.route == tree.root.high
        assert not gathered(tree.root.left) & gathered(tree.root.right)
        assert gathered(tree.root) == set(range(128))
        result = tree.defeatist_search(single_query(np.zeros(2)), 10)
        assert result.indices.shape == (10,)


class TestCalibration:
    def test_calibrated_recall_in_unit_interval(self, rng):
        tree = SpillTree(clustered(rng), SpillTreeConfig(leaf_capacity=32))
        assert tree.calibrated_recall is not None
        assert 0.0 < tree.calibrated_recall <= 1.0

    def test_calibration_disabled(self, rng):
        tree = SpillTree(
            rng.standard_normal((100, 3)),
            SpillTreeConfig(leaf_capacity=32, calibration_queries=0),
        )
        assert tree.calibrated_recall is None

    def test_calibration_deterministic(self, rng):
        vectors = rng.standard_normal((300, 4))
        config = SpillTreeConfig(leaf_capacity=32, seed=9)
        assert (
            SpillTree(vectors, config).calibrated_recall
            == SpillTree(vectors, config).calibrated_recall
        )


class TestValidation:
    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            SpillTree(np.empty((0, 3)))
        with pytest.raises(ValueError):
            SpillTreeConfig(rule="ball")
        with pytest.raises(ValueError):
            SpillTreeConfig(spill=0.95)
        with pytest.raises(ValueError):
            SpillTreeConfig(max_leaves=0)
        with pytest.raises(ValueError):
            SpillTreeConfig(leaf_capacity=0)
        tree = SpillTree(rng.standard_normal((50, 3)), SpillTreeConfig(leaf_capacity=16))
        with pytest.raises(ValueError):
            tree.defeatist_search(single_query(np.zeros(4)), 5)
        with pytest.raises(ValueError):
            tree.defeatist_search(single_query(np.zeros(3)), 0)


class TestFaultInjection:
    def test_descend_site_aborts_the_search(self, rng):
        vectors = rng.standard_normal((300, 3))
        tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=16))
        plan = FaultPlan(
            specs=(FaultSpec(site="index.descend", kind="error", at=(1,)),)
        )
        with activate_faults(plan):
            with pytest.raises(InjectedFault):
                tree.defeatist_search(single_query(vectors[0]), 5)

    def test_calibration_is_not_a_fault_target(self, rng):
        """Build-time probes must not consume or trip fault plans —
        injection belongs to the serving path only."""
        vectors = rng.standard_normal((300, 3))
        plan = FaultPlan(
            specs=(
                FaultSpec(site="index.descend", kind="error", probability=1.0),
            )
        )
        with activate_faults(plan):
            tree = SpillTree(vectors, SpillTreeConfig(leaf_capacity=16))
        assert tree.calibrated_recall is not None
