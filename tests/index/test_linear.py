"""Linear scan k-NN: the correctness reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.index.linear import LinearScan, page_capacity_for


def euclidean_query(center):
    center = np.asarray(center, dtype=float)
    return DisjunctiveQuery(
        [QueryPoint(center=center, inverse=np.eye(center.shape[0]), weight=1.0)]
    )


class TestPageCapacity:
    def test_paper_configuration(self):
        # 4 KB nodes, 8-byte components: 3-d vectors -> 170 per page.
        assert page_capacity_for(3, 4096) == 170
        assert page_capacity_for(16, 4096) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            page_capacity_for(0)
        with pytest.raises(ValueError):
            page_capacity_for(1000, 4096)


class TestLinearScan:
    def test_exact_neighbours(self, rng):
        vectors = rng.standard_normal((200, 4))
        scan = LinearScan(vectors)
        query = euclidean_query(vectors[7])
        result = scan.knn(query, 5)
        assert result.indices[0] == 7
        # Distances sorted ascending.
        assert np.all(np.diff(result.distances) >= 0)
        # Brute-force check.
        brute = np.argsort(np.sum((vectors - vectors[7]) ** 2, axis=1))[:5]
        np.testing.assert_array_equal(np.sort(result.indices), np.sort(brute))

    def test_k_larger_than_database(self, rng):
        scan = LinearScan(rng.standard_normal((10, 3)))
        result = scan.knn(euclidean_query(np.zeros(3)), 50)
        assert result.indices.shape == (10,)

    def test_cost_accounting(self, rng):
        vectors = rng.standard_normal((341, 3))  # 171 per page at 4KB? 170 -> 3 pages
        scan = LinearScan(vectors)
        result = scan.knn(euclidean_query(np.zeros(3)), 1)
        assert result.cost.node_accesses == scan.n_pages
        assert result.cost.io_accesses == scan.n_pages
        assert result.cost.distance_evaluations == 341

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LinearScan(np.empty((0, 3)))
        scan = LinearScan(rng.standard_normal((5, 3)))
        with pytest.raises(ValueError):
            scan.knn(euclidean_query(np.zeros(3)), 0)
