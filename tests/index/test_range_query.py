"""Range queries against the aggregate distance (tree and scan)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.index.hybridtree import HybridTree
from repro.index.linear import LinearScan


def query_of(centers, dim):
    return DisjunctiveQuery(
        [
            QueryPoint(center=np.asarray(c, dtype=float), inverse=np.eye(dim), weight=1.0)
            for c in centers
        ]
    )


@pytest.fixture
def vectors(rng):
    return np.vstack(
        [rng.normal(0.0, 1.0, (200, 3)), rng.normal(10.0, 1.0, (200, 3))]
    )


class TestLinearRange:
    def test_matches_brute_force(self, vectors):
        scan = LinearScan(vectors)
        query = query_of([[0.0] * 3], 3)
        result = scan.range_query(query, radius=4.0)
        brute = np.nonzero(query.distances(vectors) <= 4.0)[0]
        np.testing.assert_array_equal(np.sort(result.indices), np.sort(brute))
        assert np.all(np.diff(result.distances) >= -1e-12)

    def test_empty_result(self, vectors):
        scan = LinearScan(vectors)
        query = query_of([[100.0] * 3], 3)
        result = scan.range_query(query, radius=1.0)
        assert result.indices.shape == (0,)

    def test_negative_radius_rejected(self, vectors):
        with pytest.raises(ValueError):
            LinearScan(vectors).range_query(query_of([[0.0] * 3], 3), -1.0)


class TestTreeRange:
    def test_matches_linear_scan(self, vectors, rng):
        tree = HybridTree(vectors, leaf_capacity=16)
        scan = LinearScan(vectors)
        for _ in range(5):
            centers = vectors[rng.choice(vectors.shape[0], 2, replace=False)]
            query = query_of(centers, 3)
            radius = float(rng.uniform(0.5, 10.0))
            tree_result = tree.range_query(query, radius)
            scan_result = scan.range_query(query, radius)
            np.testing.assert_array_equal(
                np.sort(tree_result.indices), np.sort(scan_result.indices)
            )

    def test_disjunctive_range_covers_both_blobs(self, vectors):
        tree = HybridTree(vectors, leaf_capacity=16)
        query = query_of([[0.0] * 3, [10.0] * 3], 3)
        result = tree.range_query(query, radius=8.0)
        assert np.any(result.indices < 200)
        assert np.any(result.indices >= 200)

    def test_pruning_skips_far_subtrees(self, vectors):
        tree = HybridTree(vectors, leaf_capacity=16)
        query = query_of([[0.0] * 3], 3)
        result = tree.range_query(query, radius=2.0)
        # The blob at 10 should be pruned: far fewer evaluations than N.
        assert result.cost.distance_evaluations < vectors.shape[0]

    def test_node_cache_accounting(self, vectors):
        tree = HybridTree(vectors, leaf_capacity=16)
        query = query_of([[0.0] * 3], 3)
        cache: set = set()
        first = tree.range_query(query, 3.0, node_cache=cache)
        second = tree.range_query(query, 3.0, node_cache=cache)
        assert first.cost.io_accesses > 0
        assert second.cost.io_accesses == 0
        assert second.cost.cached_accesses == second.cost.node_accesses

    def test_dimension_mismatch_rejected(self, vectors):
        tree = HybridTree(vectors, leaf_capacity=16)
        with pytest.raises(ValueError):
            tree.range_query(query_of([[0.0] * 4], 4), 1.0)

    def test_zero_radius(self, vectors):
        tree = HybridTree(vectors, leaf_capacity=16)
        # A query point placed exactly on a database vector: distance 0.
        query = query_of([vectors[5]], 3)
        result = tree.range_query(query, radius=0.0)
        assert 5 in result.indices
