"""Bucketed kd tree: exactness vs linear scan, pruning, cost accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.covariance import DiagonalScheme, InverseScheme
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.index.hybridtree import HybridTree
from repro.index.linear import LinearScan


def multipoint_query(centers, inverses, weights):
    return DisjunctiveQuery(
        [
            QueryPoint(center=np.asarray(c, dtype=float), inverse=inv, weight=w)
            for c, inv, w in zip(centers, inverses, weights)
        ]
    )


def random_queries(rng, vectors, n_queries=10):
    """A mix of single-point and multipoint, diagonal and full inverses."""
    dim = vectors.shape[1]
    queries = []
    for i in range(n_queries):
        g = 1 + i % 3
        centers = vectors[rng.choice(vectors.shape[0], g, replace=False)]
        inverses = []
        for j in range(g):
            if (i + j) % 2 == 0:
                inverses.append(np.diag(rng.uniform(0.5, 3.0, dim)))
            else:
                raw = rng.standard_normal((dim + 2, dim))
                inverses.append(raw.T @ raw / (dim + 2) + 0.5 * np.eye(dim))
        weights = rng.uniform(1.0, 5.0, g)
        queries.append(multipoint_query(centers, inverses, weights))
    return queries


class TestExactness:
    def test_matches_linear_scan_over_many_queries(self, rng):
        vectors = rng.standard_normal((400, 4))
        tree = HybridTree(vectors, leaf_capacity=16)
        scan = LinearScan(vectors)
        for query in random_queries(rng, vectors, n_queries=12):
            tree_result = tree.knn(query, 10)
            scan_result = scan.knn(query, 10)
            np.testing.assert_allclose(
                np.sort(tree_result.distances), np.sort(scan_result.distances), rtol=1e-9
            )

    def test_matches_on_clustered_data(self, rng):
        vectors = np.vstack(
            [rng.normal(offset, 0.5, (100, 3)) for offset in (0.0, 10.0, -10.0)]
        )
        tree = HybridTree(vectors, leaf_capacity=8)
        scan = LinearScan(vectors)
        query = multipoint_query(
            [vectors[5], vectors[150]], [np.eye(3), np.eye(3)], [1.0, 1.0]
        )
        tree_result = tree.knn(query, 20)
        scan_result = scan.knn(query, 20)
        np.testing.assert_array_equal(
            np.sort(tree_result.indices), np.sort(scan_result.indices)
        )

    def test_duplicate_points(self):
        vectors = np.ones((50, 3))
        tree = HybridTree(vectors, leaf_capacity=8)
        query = multipoint_query([np.ones(3)], [np.eye(3)], [1.0])
        result = tree.knn(query, 5)
        assert result.indices.shape == (5,)

    @pytest.mark.parametrize("alpha", [1.0, -2.0, -5.0])
    def test_power_mean_queries_match_scan(self, rng, alpha):
        """Baseline PowerMeanQuery objects work through the tree too."""
        from repro.baselines.base import PowerMeanQuery
        from repro.index.linear import LinearScan

        vectors = rng.standard_normal((300, 3))
        tree = HybridTree(vectors, leaf_capacity=16)
        scan = LinearScan(vectors)
        query = PowerMeanQuery(
            centers=vectors[[0, 100]],
            inverses=(np.eye(3), np.diag([2.0, 1.0, 0.5])),
            weights=np.array([1.0, 3.0]),
            alpha=alpha,
        )
        tree_result = tree.knn(query, 15)
        scan_result = scan.knn(query, 15)
        np.testing.assert_allclose(
            np.sort(tree_result.distances), np.sort(scan_result.distances), rtol=1e-9
        )


class TestPruning:
    def test_prunes_far_subtrees(self, rng):
        # Two distant blobs: a query inside one should not touch most of
        # the other blob's leaves.
        vectors = np.vstack(
            [rng.normal(0.0, 0.5, (500, 3)), rng.normal(100.0, 0.5, (500, 3))]
        )
        tree = HybridTree(vectors, leaf_capacity=16)
        query = multipoint_query([vectors[3]], [np.eye(3)], [1.0])
        result = tree.knn(query, 10)
        # Far fewer distance evaluations than the full database.
        assert result.cost.distance_evaluations < 500

    def test_node_cache_counts_hits(self, rng):
        vectors = rng.standard_normal((300, 3))
        tree = HybridTree(vectors, leaf_capacity=16)
        query = multipoint_query([vectors[0]], [np.eye(3)], [1.0])
        cache: set = set()
        first = tree.knn(query, 10, node_cache=cache)
        assert first.cost.cached_accesses == 0
        assert first.cost.io_accesses == first.cost.node_accesses
        second = tree.knn(query, 10, node_cache=cache)
        assert second.cost.io_accesses == 0
        assert second.cost.cached_accesses == second.cost.node_accesses


class TestStructure:
    def test_leaf_capacity_respected(self, rng):
        vectors = rng.standard_normal((200, 3))
        tree = HybridTree(vectors, leaf_capacity=10)

        def check(node):
            if node.is_leaf:
                assert node.indices.shape[0] <= 10
            else:
                check(node.left)
                check(node.right)

        check(tree.root)

    def test_mbrs_contain_children(self, rng):
        vectors = rng.standard_normal((150, 4))
        tree = HybridTree(vectors, leaf_capacity=12)

        def check(node):
            if node.is_leaf:
                subset = vectors[node.indices]
                assert np.all(subset >= node.low - 1e-12)
                assert np.all(subset <= node.high + 1e-12)
            else:
                for child in (node.left, node.right):
                    assert np.all(child.low >= node.low - 1e-12)
                    assert np.all(child.high <= node.high + 1e-12)
                    check(child)

        check(tree.root)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            HybridTree(np.empty((0, 3)))
        with pytest.raises(ValueError):
            HybridTree(rng.standard_normal((5, 3)), leaf_capacity=0)
        tree = HybridTree(rng.standard_normal((20, 3)), leaf_capacity=8)
        with pytest.raises(ValueError):
            tree.knn(multipoint_query([np.zeros(4)], [np.eye(4)], [1.0]), 3)
        with pytest.raises(ValueError):
            tree.knn(multipoint_query([np.zeros(3)], [np.eye(3)], [1.0]), 0)
