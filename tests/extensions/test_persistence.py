"""Engine serialization: pause/resume a feedback session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QclusterConfig
from repro.core.qcluster import QclusterEngine
from repro.extensions.persistence import (
    engine_from_dict,
    engine_to_dict,
    load_engine,
    save_engine,
)


@pytest.fixture
def engine_with_state(rng):
    engine = QclusterEngine(QclusterConfig(max_clusters=3, significance_level=0.02))
    engine.start(rng.standard_normal(3))
    engine.feedback(
        np.vstack([rng.normal(0.0, 0.4, (10, 3)), rng.normal(8.0, 0.4, (10, 3))]),
        scores=np.linspace(1.0, 2.0, 20),
    )
    return engine


class TestRoundTrip:
    def test_dict_round_trip_preserves_clusters(self, engine_with_state):
        restored = engine_from_dict(engine_to_dict(engine_with_state))
        assert restored.n_clusters == engine_with_state.n_clusters
        assert restored.iteration == engine_with_state.iteration
        for original, copy in zip(engine_with_state.clusters, restored.clusters):
            np.testing.assert_allclose(copy.points, original.points)
            np.testing.assert_allclose(copy.scores, original.scores)
            np.testing.assert_allclose(copy.centroid, original.centroid)

    def test_config_preserved(self, engine_with_state):
        restored = engine_from_dict(engine_to_dict(engine_with_state))
        assert restored.config.max_clusters == 3
        assert restored.config.significance_level == 0.02

    def test_query_identical_after_round_trip(self, engine_with_state, rng):
        restored = engine_from_dict(engine_to_dict(engine_with_state))
        probes = rng.standard_normal((15, 3))
        np.testing.assert_allclose(
            restored.current_query().distances(probes),
            engine_with_state.current_query().distances(probes),
        )

    def test_dedup_state_survives(self, engine_with_state):
        restored = engine_from_dict(engine_to_dict(engine_with_state))
        mass_before = restored.total_relevance_mass
        # Re-feeding an absorbed point must still be a no-op.
        restored.feedback(engine_with_state.clusters[0].points[:3])
        assert restored.total_relevance_mass == pytest.approx(mass_before)

    def test_merge_history_preserved(self, engine_with_state):
        restored = engine_from_dict(engine_to_dict(engine_with_state))
        assert len(restored.merge_history) == len(engine_with_state.merge_history)

    def test_resumed_session_continues(self, engine_with_state, rng):
        restored = engine_from_dict(engine_to_dict(engine_with_state))
        query = restored.feedback(rng.normal(0.0, 0.4, (5, 3)))
        assert query.size == restored.n_clusters

    def test_file_round_trip(self, engine_with_state, tmp_path, rng):
        path = tmp_path / "engine.json"
        save_engine(engine_with_state, path)
        restored = load_engine(path)
        probes = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            restored.current_query().distances(probes),
            engine_with_state.current_query().distances(probes),
        )

    def test_fresh_engine_round_trip(self, rng):
        engine = QclusterEngine()
        engine.start(rng.standard_normal(4))
        restored = engine_from_dict(engine_to_dict(engine))
        assert restored.n_clusters == 0
        assert restored.current_query().size == 1

    def test_config_fields_cover_the_dataclass(self):
        """Guard: adding a QclusterConfig field must update persistence."""
        import dataclasses

        from repro.extensions.persistence import _CONFIG_FIELDS

        declared = {
            field.name
            for field in dataclasses.fields(QclusterConfig)
            if field.init
        }
        assert set(_CONFIG_FIELDS) == declared
