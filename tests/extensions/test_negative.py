"""Negative-feedback extension: Rocchio negative term, kernel penalty."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import PowerMeanQuery
from repro.extensions.negative import (
    NegativePenaltyQuery,
    RocchioQueryPointMovement,
    SimulatedUserWithNegatives,
)
from repro.retrieval.database import FeatureDatabase


def euclidean_query(center):
    center = np.asarray(center, dtype=float)
    return PowerMeanQuery(
        centers=center[None, :],
        inverses=(np.eye(center.shape[0]),),
        weights=np.ones(1),
        alpha=1.0,
    )


class TestNegativePenaltyQuery:
    def test_no_negatives_is_identity(self, rng):
        base = euclidean_query(np.zeros(3))
        wrapped = NegativePenaltyQuery(base, np.empty((0, 3)))
        points = rng.standard_normal((10, 3))
        np.testing.assert_allclose(wrapped.distances(points), base.distances(points))

    def test_penalty_peaks_at_negative_example(self):
        base = euclidean_query(np.zeros(2))
        negative = np.array([[2.0, 0.0]])
        wrapped = NegativePenaltyQuery(base, negative, gamma=1.0, sigma=0.5)
        on_negative = wrapped.distances(negative)[0]
        base_on_negative = base.distances(negative)[0]
        assert on_negative == pytest.approx(2.0 * base_on_negative)

    def test_penalty_decays_with_distance(self):
        base = euclidean_query(np.zeros(2))
        wrapped = NegativePenaltyQuery(base, np.array([[5.0, 0.0]]), gamma=2.0, sigma=0.5)
        far = np.array([[0.0, 5.0]])
        np.testing.assert_allclose(
            wrapped.distances(far), base.distances(far), rtol=1e-6
        )

    def test_reranking_demotes_region_near_negatives(self, rng):
        # Two equidistant blobs; negatives mark one of them.
        blob_a = rng.normal(0.0, 0.3, (20, 2)) + np.array([3.0, 0.0])
        blob_b = rng.normal(0.0, 0.3, (20, 2)) + np.array([-3.0, 0.0])
        database = np.vstack([blob_a, blob_b])
        base = euclidean_query(np.zeros(2))
        wrapped = NegativePenaltyQuery(base, blob_a[:5], gamma=3.0, sigma=1.0)
        ranking = np.argsort(wrapped.distances(database))
        top_half = ranking[:20]
        # Blob B (indices 20..39) dominates the top of the ranking.
        assert np.sum(top_half >= 20) > 15

    def test_validation(self):
        base = euclidean_query(np.zeros(2))
        with pytest.raises(ValueError):
            NegativePenaltyQuery(base, np.zeros((1, 2)), gamma=-1.0)
        with pytest.raises(ValueError):
            NegativePenaltyQuery(base, np.zeros((1, 2)), sigma=0.0)


class TestRocchioWithNegatives:
    def test_negative_term_pushes_away(self, rng):
        relevant = rng.normal(0.0, 0.2, (20, 2)) + np.array([2.0, 0.0])
        negatives = np.array([[2.0, 3.0]])

        plain = RocchioQueryPointMovement(nonrelevant_weight=0.0)
        plain.start(np.zeros(2))
        plain_query = plain.feedback(relevant)

        pushed = RocchioQueryPointMovement(nonrelevant_weight=0.5)
        pushed.start(np.zeros(2))
        pushed.add_negatives(negatives)
        pushed_query = pushed.feedback(relevant)

        # The negative example sits "above" the relevant mean; the pushed
        # query's center must move down relative to the plain one.
        assert pushed_query.centers[0][1] < plain_query.centers[0][1]

    def test_start_clears_negatives(self, rng):
        method = RocchioQueryPointMovement()
        method.start(np.zeros(2))
        method.add_negatives(np.ones((3, 2)))
        method.start(np.zeros(2))
        assert method._negatives == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RocchioQueryPointMovement(nonrelevant_weight=-0.1)


class TestSimulatedUserWithNegatives:
    @pytest.fixture
    def database(self, rng):
        vectors = rng.standard_normal((20, 2))
        labels = [0] * 10 + [1] * 10
        return FeatureDatabase(vectors, labels)

    def test_non_relevant_marks_other_categories(self, database):
        user = SimulatedUserWithNegatives(database, target_category=0)
        negatives = user.non_relevant([0, 10, 11, 5])
        np.testing.assert_array_equal(negatives, [10, 11])

    def test_max_negatives_cap(self, database):
        user = SimulatedUserWithNegatives(database, 0, max_negatives=1)
        negatives = user.non_relevant([10, 11, 12])
        assert negatives.shape == (1,)

    def test_positive_judgments_unchanged(self, database):
        user = SimulatedUserWithNegatives(database, 0)
        judgment = user.judge([0, 1, 10])
        np.testing.assert_array_equal(judgment.relevant_indices, [0, 1])

    def test_validation(self, database):
        with pytest.raises(ValueError):
            SimulatedUserWithNegatives(database, 0, max_negatives=0)
