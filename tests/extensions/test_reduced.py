"""Retrieval-time PCA reduction (Section 4.4 end-to-end)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QclusterConfig
from repro.core.pca import PCA
from repro.extensions.reduced import PCAReducedMethod
from repro.retrieval import FeatureDatabase, FeedbackSession, QclusterMethod


@pytest.fixture
def anisotropic_database(rng):
    """Two categories separated along a high-variance latent direction,
    embedded in 8-d with low-variance nuisance dimensions."""
    latent_a = rng.normal(-2.0, 0.5, (40, 2))
    latent_b = rng.normal(2.0, 0.5, (40, 2))
    latent = np.vstack([latent_a, latent_b])
    mixing = rng.standard_normal((2, 8)) * 2.0
    noise = 0.05 * rng.standard_normal((80, 8))
    return FeatureDatabase(latent @ mixing + noise, [0] * 40 + [1] * 40)


class TestPCAReducedMethod:
    def test_full_rank_reduction_preserves_results(self, anisotropic_database):
        """No truncation + inverse scheme: identical rankings (Theorem 1)."""
        config = QclusterConfig(scheme="inverse", regularization=1e-10)
        plain = FeedbackSession(
            anisotropic_database, QclusterMethod(config), k=30
        ).run(0, n_iterations=2)
        reduced = FeedbackSession(
            anisotropic_database,
            PCAReducedMethod(
                lambda: QclusterMethod(config),
                training_data=anisotropic_database.vectors,
            ),
            k=30,
        ).run(0, n_iterations=2)
        np.testing.assert_allclose(plain.recalls, reduced.recalls, atol=0.05)

    def test_truncated_reduction_keeps_quality(self, anisotropic_database):
        """2 latent dims: keeping 2 of 8 components loses nothing."""
        reduced = FeedbackSession(
            anisotropic_database,
            PCAReducedMethod(
                QclusterMethod,
                training_data=anisotropic_database.vectors,
                n_components=2,
            ),
            k=30,
        ).run(0, n_iterations=2)
        assert reduced.recalls[-1] > 0.6

    def test_accepts_prefitted_pca(self, anisotropic_database):
        pca = PCA(n_components=3).fit(anisotropic_database.vectors)
        method = PCAReducedMethod(QclusterMethod, pca=pca)
        query = method.start(anisotropic_database.vectors[0])
        distances = query.distances(anisotropic_database.vectors)
        assert distances.shape == (80,)
        # The wrapped query operates in 3 dims.
        assert query.inner.dimension == 3

    def test_validation(self, anisotropic_database):
        with pytest.raises(ValueError):
            PCAReducedMethod(QclusterMethod)
        with pytest.raises(ValueError):
            PCAReducedMethod(QclusterMethod, pca=PCA(n_components=2))
