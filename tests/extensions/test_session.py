"""NegativeFeedbackSession: penalty re-ranking in the loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions.session import NegativeFeedbackSession
from repro.retrieval import FeatureDatabase, FeedbackSession, QclusterMethod


@pytest.fixture
def confusable_database(rng):
    """Target category overlapping a decoy category.

    The decoy sits close enough that the initial query retrieves plenty
    of it; negative feedback should push it out faster than positive
    feedback alone.
    """
    target = rng.normal(0.0, 0.8, (50, 3))
    decoy = rng.normal(1.2, 0.8, (50, 3))
    far = rng.normal(10.0, 0.8, (50, 3))
    return FeatureDatabase(np.vstack([target, decoy, far]), [0] * 50 + [1] * 50 + [2] * 50)


class TestNegativeFeedbackSession:
    def test_runs_and_records(self, confusable_database):
        session = NegativeFeedbackSession(confusable_database, QclusterMethod(), k=40)
        result = session.run(0, n_iterations=3)
        assert len(result.records) == 4
        assert result.recalls.shape == (4,)

    def test_negatives_help_on_confusable_categories(self, confusable_database):
        positive_only = FeedbackSession(
            confusable_database, QclusterMethod(), k=40
        ).run(0, n_iterations=4)
        with_negatives = NegativeFeedbackSession(
            confusable_database, QclusterMethod(), k=40, gamma=2.0
        ).run(0, n_iterations=4)
        # Negative feedback must not hurt, and typically helps, on the
        # decoy-contaminated query.
        assert with_negatives.precisions[-1] >= positive_only.precisions[-1] - 0.05

    def test_custom_sigma(self, confusable_database):
        session = NegativeFeedbackSession(
            confusable_database, QclusterMethod(), k=30, sigma=0.5
        )
        result = session.run(0, n_iterations=2)
        assert len(result.records) == 3

    def test_validation(self, confusable_database):
        with pytest.raises(ValueError):
            NegativeFeedbackSession(confusable_database, QclusterMethod(), k=0)
        session = NegativeFeedbackSession(confusable_database, QclusterMethod(), k=10)
        with pytest.raises(IndexError):
            session.run(10_000)

    def test_sigma_heuristic_positive(self, confusable_database):
        session = NegativeFeedbackSession(confusable_database, QclusterMethod(), k=10)
        assert session.sigma > 0
