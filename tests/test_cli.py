"""CLI entry points."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.k == 100
        assert args.iterations == 5

    def test_compare_method_list(self):
        args = build_parser().parse_args(["compare", "--methods", "qcluster,falcon"])
        assert args.methods == "qcluster,falcon"


class TestCommands:
    def test_disjunctive_smoke(self, capsys):
        exit_code = main(["disjunctive", "--points", "2000", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "agreement with the two-ball ground truth" in output

    def test_demo_smoke(self, capsys):
        exit_code = main(
            [
                "demo",
                "--categories", "4",
                "--images-per-category", "20",
                "--iterations", "2",
                "--k", "20",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "iteration" in output
        assert output.count("\n") >= 4  # header + 3 iterations

    def test_compare_smoke(self, capsys):
        exit_code = main(
            [
                "compare",
                "--categories", "4",
                "--images-per-category", "20",
                "--iterations", "1",
                "--k", "20",
                "--queries", "2",
                "--methods", "qcluster,qpm",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "qcluster" in output
        assert "qpm" in output

    def test_compare_unknown_method(self, capsys):
        exit_code = main(
            ["compare", "--methods", "banana", "--categories", "2",
             "--images-per-category", "5"]
        )
        assert exit_code == 2
        assert "unknown methods" in capsys.readouterr().err


class TestServiceCommand:
    def test_service_smoke(self, capsys):
        """create → query → feedback → metrics snapshot via the CLI path."""
        exit_code = main(
            [
                "service",
                "--users", "3",
                "--categories", "4",
                "--images-per-category", "15",
                "--iterations", "2",
                "--k", "10",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "sessions/sec" in output
        assert "sessions_created" in output
        assert "sessions_closed" in output
        assert "feedbacks" in output
        assert "cache_hit_rate" in output
        assert "degradations" in output
        # Latency stages of the snapshot are printed too.
        assert "query" in output and "feedback" in output

    def test_service_single_user(self, capsys):
        exit_code = main(
            [
                "service",
                "--users", "1",
                "--categories", "3",
                "--images-per-category", "10",
                "--iterations", "1",
                "--k", "5",
            ]
        )
        assert exit_code == 0
        assert "served 1 sessions" in capsys.readouterr().out

    def test_service_defaults(self):
        args = build_parser().parse_args(["service"])
        assert args.users == 8
        assert args.capacity == 256
        assert args.cache_size == 128
        assert args.deadline is None


class TestChaosCommand:
    CHAOS_SMALL = [
        "chaos",
        "--categories", "4",
        "--images-per-category", "20",
        "--iterations", "2",
        "--k", "10",
        "--sessions", "3",
        "--shards", "2",
    ]

    def test_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.plan == "worker-crash"
        assert args.fault_seed == 0
        assert args.capacity == 2
        assert not args.use_index

    def test_unknown_plan_lists_builtins(self, capsys):
        exit_code = main(["chaos", "--plan", "nope"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "unknown plan" in err
        assert "worker-crash" in err

    @pytest.mark.parametrize(
        "plan", ["worker-crash", "slow-shard", "corrupt-checkpoint"]
    )
    def test_builtin_plans_uphold_the_contract(self, capsys, plan):
        exit_code = main(self.CHAOS_SMALL + ["--plan", plan])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert f"plan: {plan}" in output
        assert "resilience contract holds" in output

    def test_plan_round_trips_through_a_file(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        exit_code = main(
            self.CHAOS_SMALL + ["--plan", "worker-crash", "--save-plan", str(plan_path)]
        )
        assert exit_code == 0
        assert plan_path.exists()
        exit_code = main(self.CHAOS_SMALL + ["--plan-file", str(plan_path)])
        assert exit_code == 0
        assert "resilience contract holds" in capsys.readouterr().out


class TestFigureCommand:
    def test_fig5(self, capsys):
        exit_code = main(["figure", "fig5"])
        assert exit_code == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        exit_code = main(["figure", "fig99"])
        assert exit_code == 2
        assert "unknown figure id" in capsys.readouterr().err

    def test_csv_export(self, capsys, tmp_path):
        exit_code = main(["figure", "fig5", "--csv", str(tmp_path)])
        assert exit_code == 0
        assert (tmp_path / "fig5.csv").exists()

    def test_table2_produces_both_schemes(self, capsys):
        exit_code = main(["figure", "table2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "inverse" in output
        assert "diagonal" in output


class TestExportCollection:
    def test_round_trip_through_disk(self, capsys, tmp_path):
        exit_code = main(
            [
                "export-collection", str(tmp_path / "corel"),
                "--categories", "3",
                "--images-per-category", "4",
                "--image-size", "10",
            ]
        )
        assert exit_code == 0
        assert "wrote 12 images" in capsys.readouterr().out

        from repro.datasets import load_directory_collection

        images, labels, names = load_directory_collection(tmp_path / "corel")
        assert len(images) == 12
        assert names == ["category_000", "category_001", "category_002"]
        assert images[0].shape == (10, 10)


class TestStoreCommand:
    BUILD_SMALL = [
        "store", "build",
        "--categories", "3",
        "--images-per-category", "10",
        "--seed", "7",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(self.BUILD_SMALL + ["--output", "x.qcs"])
        assert args.store_command == "build"
        assert args.shards is None
        assert args.coarse_dims == 0

    def test_chaos_store_flag(self):
        args = build_parser().parse_args(["chaos", "--plan", "torn-block", "--store"])
        assert args.store is True
        assert not build_parser().parse_args(["chaos"]).store

    def test_build_verify_inspect_round_trip(self, capsys, tmp_path):
        import json

        path = tmp_path / "cli.qcs"
        exit_code = main(self.BUILD_SMALL + ["--output", str(path), "--shards", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "shards=3" in output
        assert "fingerprint:" in output

        assert main(["store", "verify", str(path)]) == 0
        assert "blocks verified" in capsys.readouterr().out

        assert main(["store", "inspect", str(path)]) == 0
        description = json.loads(capsys.readouterr().out)
        assert description["n"] == 30
        assert description["n_shards"] == 3
        assert {entry["name"] for entry in description["blocks"]} >= {
            "shard/0000", "shard/0001", "shard/0002", "labels",
        }

    def test_build_with_coarse_companions(self, capsys, tmp_path):
        path = tmp_path / "coarse.qcs"
        exit_code = main(
            self.BUILD_SMALL + ["--output", str(path), "--coarse-dims", "2"]
        )
        assert exit_code == 0
        assert "coarse_dims=2" in capsys.readouterr().out

    def test_build_rejects_oversized_coarse_dims(self, capsys, tmp_path):
        exit_code = main(
            self.BUILD_SMALL
            + ["--output", str(tmp_path / "bad.qcs"), "--coarse-dims", "99"]
        )
        assert exit_code == 2
        assert "cannot build store" in capsys.readouterr().err

    def test_verify_flags_corruption(self, capsys, tmp_path):
        path = tmp_path / "corrupt.qcs"
        assert main(self.BUILD_SMALL + ["--output", str(path), "--shards", "2"]) == 0
        capsys.readouterr()
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # damage the final block's payload
        path.write_bytes(bytes(data))
        assert main(["store", "verify", str(path)]) == 1
        captured = capsys.readouterr()
        assert "crc_mismatch" in captured.out + captured.err

    def test_inspect_rejects_non_store(self, capsys, tmp_path):
        junk = tmp_path / "junk.qcs"
        junk.write_bytes(b"not a store")
        assert main(["store", "inspect", str(junk)]) == 1
        assert "invalid store" in capsys.readouterr().err

    def test_torn_block_chaos_over_a_real_store(self, capsys):
        exit_code = main(
            [
                "chaos",
                "--plan", "torn-block",
                "--store",
                "--categories", "3",
                "--images-per-category", "15",
                "--iterations", "2",
                "--k", "10",
                "--sessions", "3",
                "--shards", "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "resilience contract holds" in output


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.max_concurrent == 64
        assert args.batch_size == 32
        assert args.batch_wait_ms == 2.0
        assert args.shed_threshold is None
        assert not args.no_batching
        assert not args.use_index
        assert not args.self_test

    def test_self_test_runs_the_closed_loop_load(self, capsys):
        exit_code = main(
            [
                "serve",
                "--port", "0",
                "--self-test",
                "--categories", "4",
                "--images-per-category", "20",
                "--k", "10",
                "--loadgen-sessions", "6",
                "--loadgen-rounds", "2",
                "--max-concurrent", "8",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "qps" in output
        assert "batches" in output
        assert "errors=0" in output

    def test_self_test_unbatched(self, capsys):
        exit_code = main(
            [
                "serve",
                "--port", "0",
                "--self-test",
                "--no-batching",
                "--categories", "3",
                "--images-per-category", "15",
                "--k", "10",
                "--loadgen-sessions", "3",
                "--loadgen-rounds", "1",
            ]
        )
        assert exit_code == 0
        assert "qps" in capsys.readouterr().out


class TestBatchAbortChaos:
    def test_parser_has_batching_flag(self):
        args = build_parser().parse_args(["chaos", "--batching"])
        assert args.batching

    def test_batch_abort_chaos_upholds_the_contract(self, capsys):
        exit_code = main(
            [
                "chaos",
                "--plan", "batch-abort",
                "--batching",
                "--categories", "3",
                "--images-per-category", "15",
                "--iterations", "2",
                "--k", "10",
                "--sessions", "3",
                "--shards", "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "plan: batch-abort" in output
        assert "resilience contract holds" in output
