"""FeatureDatabase: labels, categories, related-category relation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval.database import FeatureDatabase


@pytest.fixture
def database(rng):
    vectors = rng.standard_normal((30, 4))
    labels = [i // 10 for i in range(30)]
    return FeatureDatabase(vectors, labels, related={0: {1}, 1: {0}})


class TestFeatureDatabase:
    def test_basic_properties(self, database):
        assert database.size == 30
        assert len(database) == 30
        assert database.dimension == 4
        np.testing.assert_array_equal(database.categories, [0, 1, 2])

    def test_category_lookup(self, database):
        assert database.category_of(0) == 0
        assert database.category_of(29) == 2
        np.testing.assert_array_equal(database.members_of(1), np.arange(10, 20))
        assert database.category_size(2) == 10

    def test_related_relation(self, database):
        assert database.related_to(0) == frozenset({1})
        assert database.related_to(2) == frozenset()

    def test_is_relevant_same_and_related(self, database):
        assert database.is_relevant(5, 0)       # same category
        assert database.is_relevant(15, 0)      # related category
        assert not database.is_relevant(25, 0)  # unrelated

    def test_label_length_validation(self, rng):
        with pytest.raises(ValueError):
            FeatureDatabase(rng.standard_normal((5, 2)), [0, 1])
