"""Property-based tests of the retrieval metrics (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst
from hypothesis.extra.numpy import arrays

from repro.retrieval.metrics import (
    average_precision,
    f1_score,
    precision,
    precision_recall_curve,
    r_precision,
    recall,
)

masks = arrays(np.bool_, hst.integers(min_value=1, max_value=60))
totals = hst.integers(min_value=0, max_value=100)


class TestMetricProperties:
    @given(masks, totals)
    @settings(max_examples=150, deadline=None)
    def test_all_metrics_bounded(self, mask, total):
        total = max(total, int(mask.sum()))  # consistent population claim
        assert 0.0 <= precision(mask) <= 1.0
        assert 0.0 <= recall(mask, total) <= 1.0
        assert 0.0 <= f1_score(mask, total) <= 1.0 + 1e-12
        assert 0.0 <= r_precision(mask, total) <= 1.0 + 1e-12
        assert 0.0 <= average_precision(mask, total) <= 1.0 + 1e-12

    @given(masks)
    @settings(max_examples=50, deadline=None)
    def test_inconsistent_population_rejected(self, mask):
        n_hits = int(np.sum(mask))
        if n_hits == 0:
            return
        import pytest

        with pytest.raises(ValueError, match="total_relevant"):
            recall(mask, n_hits - 1)

    @given(masks, hst.integers(min_value=1, max_value=100))
    @settings(max_examples=150, deadline=None)
    def test_f1_between_min_and_max_of_p_and_r(self, mask, total):
        total = max(total, int(mask.sum()))
        p = precision(mask)
        r = recall(mask, total)
        f1 = f1_score(mask, total)
        assert min(p, r) - 1e-12 <= f1 <= max(p, r) + 1e-12

    @given(masks, hst.integers(min_value=1, max_value=100))
    @settings(max_examples=150, deadline=None)
    def test_curve_endpoints(self, mask, total):
        total = max(total, int(mask.sum()))
        curve = precision_recall_curve(mask, total)
        assert curve.precisions[-1] == precision(mask)
        assert curve.recalls[-1] == recall(mask, total)
        assert np.all(np.diff(curve.recalls) >= -1e-12)

    @given(masks)
    @settings(max_examples=100, deadline=None)
    def test_ap_is_one_for_perfect_prefix_ranking(self, mask):
        """All relevant items ranked first -> AP = 1 (if any relevant)."""
        n_relevant = int(mask.sum())
        if n_relevant == 0:
            return
        perfect = np.zeros(mask.size, dtype=bool)
        perfect[:n_relevant] = True
        assert average_precision(perfect, n_relevant) == 1.0

    @given(masks, hst.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_moving_a_hit_earlier_never_lowers_ap(self, mask, total):
        mask = np.array(mask)
        total = max(total, int(mask.sum()))
        hits = np.nonzero(mask)[0]
        misses = np.nonzero(~mask)[0]
        if hits.size == 0 or misses.size == 0:
            return
        last_hit = hits[-1]
        earlier_misses = misses[misses < last_hit]
        if earlier_misses.size == 0:
            return
        improved = mask.copy()
        improved[last_hit] = False
        improved[earlier_misses[0]] = True
        assert average_precision(improved, total) >= average_precision(mask, total) - 1e-12
