"""SimulatedUser: the category-oracle feedback protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval.database import FeatureDatabase
from repro.retrieval.user import SimulatedUser


@pytest.fixture
def database(rng):
    vectors = rng.standard_normal((30, 3))
    labels = [i // 10 for i in range(30)]
    return FeatureDatabase(vectors, labels, related={0: {1}})


class TestJudge:
    def test_marks_same_category(self, database):
        user = SimulatedUser(database, target_category=0)
        judgment = user.judge([0, 5, 25, 9])
        np.testing.assert_array_equal(judgment.relevant_indices, [0, 5, 9])
        np.testing.assert_array_equal(judgment.scores, [1.0, 1.0, 1.0])
        assert judgment.count == 3

    def test_related_category_reduced_score(self, database):
        user = SimulatedUser(
            database, 0, same_category_score=2.0, related_category_score=0.5
        )
        judgment = user.judge([0, 12, 25])
        np.testing.assert_array_equal(judgment.relevant_indices, [0, 12])
        np.testing.assert_array_equal(judgment.scores, [2.0, 0.5])

    def test_max_marked_cap(self, database):
        user = SimulatedUser(database, 0, max_marked=2)
        judgment = user.judge(list(range(10)))
        assert judgment.count == 2

    def test_empty_result_list(self, database):
        judgment = SimulatedUser(database, 0).judge([])
        assert judgment.count == 0

    def test_validation(self, database):
        with pytest.raises(ValueError):
            SimulatedUser(database, 0, same_category_score=0.0)
        with pytest.raises(ValueError):
            SimulatedUser(database, 0, max_marked=0)


class TestRelevanceMask:
    def test_mask_and_total(self, database):
        user = SimulatedUser(database, 0)
        mask, total = user.relevance_mask([0, 15, 25])
        np.testing.assert_array_equal(mask, [True, True, False])
        # 10 in category 0 + 10 in related category 1.
        assert total == 20

    def test_total_without_related(self, database):
        user = SimulatedUser(database, 2)
        _, total = user.relevance_mask([0])
        assert total == 10
