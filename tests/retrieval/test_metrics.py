"""Precision, recall and precision-recall curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval.metrics import (
    PrecisionRecallCurve,
    average_curves,
    average_precision,
    f1_score,
    precision,
    precision_recall_curve,
    r_precision,
    recall,
)


class TestScalars:
    def test_precision(self):
        assert precision([True, True, False, False]) == 0.5

    def test_recall(self):
        assert recall([True, True, False], total_relevant=10) == 0.2

    def test_recall_zero_population(self):
        assert recall([False], total_relevant=0) == 0.0

    def test_precision_empty(self):
        with pytest.raises(ValueError):
            precision([])

    def test_recall_negative_total(self):
        with pytest.raises(ValueError):
            recall([True], total_relevant=-1)


class TestF1:
    def test_perfect(self):
        assert f1_score([True, True], total_relevant=2) == 1.0

    def test_harmonic_mean(self):
        # P = 0.5, R = 0.25 -> F1 = 1/3.
        assert f1_score([True, False], total_relevant=4) == pytest.approx(1.0 / 3.0)

    def test_zero_when_nothing_found(self):
        assert f1_score([False, False], total_relevant=3) == 0.0


class TestRPrecision:
    def test_at_population_cutoff(self):
        # R = 3: precision over the first 3 results only.
        assert r_precision([True, False, True, True], total_relevant=3) == pytest.approx(
            2.0 / 3.0
        )

    def test_short_result_list(self):
        assert r_precision([True], total_relevant=4) == pytest.approx(0.25)

    def test_zero_population(self):
        assert r_precision([False], total_relevant=0) == 0.0

    def test_inconsistent_population_rejected(self):
        with pytest.raises(ValueError, match="total_relevant"):
            r_precision([True], total_relevant=0)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([True, True, False], total_relevant=2) == 1.0

    def test_textbook_example(self):
        # Relevant at ranks 1 and 3 of 2 total: (1/1 + 2/3) / 2 = 5/6.
        assert average_precision([True, False, True], total_relevant=2) == pytest.approx(
            5.0 / 6.0
        )

    def test_unretrieved_relevant_penalized(self):
        # Only 1 of 4 relevant retrieved, at rank 1: AP = 1/4.
        assert average_precision([True, False], total_relevant=4) == pytest.approx(0.25)

    def test_late_hits_score_lower(self):
        early = average_precision([True, False, False, False], total_relevant=1)
        late = average_precision([False, False, False, True], total_relevant=1)
        assert early > late


class TestCurve:
    def test_prefix_semantics(self):
        curve = precision_recall_curve([True, False, True], total_relevant=4)
        np.testing.assert_allclose(curve.precisions, [1.0, 0.5, 2.0 / 3.0])
        np.testing.assert_allclose(curve.recalls, [0.25, 0.25, 0.5])

    def test_recall_monotone(self, rng):
        mask = rng.uniform(size=50) < 0.3
        curve = precision_recall_curve(mask, total_relevant=30)
        assert np.all(np.diff(curve.recalls) >= 0)

    def test_average_precision_summary(self):
        curve = precision_recall_curve([True, True], total_relevant=2)
        assert curve.average_precision == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_curve([], total_relevant=1)


class TestAverageCurves:
    def test_pointwise_mean(self):
        a = PrecisionRecallCurve(np.array([1.0, 0.5]), np.array([0.1, 0.2]))
        b = PrecisionRecallCurve(np.array([0.0, 0.5]), np.array([0.3, 0.4]))
        mean = average_curves([a, b])
        np.testing.assert_allclose(mean.precisions, [0.5, 0.5])
        np.testing.assert_allclose(mean.recalls, [0.2, 0.3])

    def test_mismatched_lengths(self):
        a = PrecisionRecallCurve(np.ones(2), np.ones(2))
        b = PrecisionRecallCurve(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            average_curves([a, b])

    def test_empty_list(self):
        with pytest.raises(ValueError):
            average_curves([])
