"""Batch evaluation runners (averaged-over-queries protocol)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.qpm import QueryPointMovement
from repro.retrieval.methods import QclusterMethod
from repro.retrieval.runners import compare_methods, run_batch, sample_query_indices


class TestSampleQueries:
    def test_unique_and_in_range(self, color_database, rng):
        indices = sample_query_indices(color_database, 10, rng)
        assert len(set(indices.tolist())) == 10
        assert indices.min() >= 0
        assert indices.max() < color_database.size

    def test_clamped_to_database_size(self, color_database, rng):
        indices = sample_query_indices(color_database, 10_000, rng)
        assert indices.shape[0] == color_database.size

    def test_validation(self, color_database, rng):
        with pytest.raises(ValueError):
            sample_query_indices(color_database, 0, rng)


class TestRunBatch:
    def test_shapes(self, color_database):
        result = run_batch(
            color_database, QclusterMethod, [0, 25, 50], k=20, n_iterations=2
        )
        assert result.mean_precision.shape == (3,)
        assert result.mean_recall.shape == (3,)
        assert result.per_query_precision.shape == (3, 3)
        assert len(result.curves) == 3
        assert result.curves[0].precisions.shape == (20,)

    def test_mean_is_average_of_per_query(self, color_database):
        result = run_batch(color_database, QclusterMethod, [0, 40], k=20, n_iterations=1)
        np.testing.assert_allclose(
            result.mean_recall, result.per_query_recall.mean(axis=0)
        )

    def test_empty_queries_rejected(self, color_database):
        with pytest.raises(ValueError):
            run_batch(color_database, QclusterMethod, [], k=10)


class TestCompareMethods:
    def test_paired_initial_iteration(self, color_database):
        """All methods share iteration 0 (the paper's protocol)."""
        results = compare_methods(
            color_database,
            {"qcluster": QclusterMethod, "qpm": QueryPointMovement},
            [0, 30, 60],
            k=20,
            n_iterations=2,
        )
        np.testing.assert_allclose(
            results["qcluster"].mean_recall[0], results["qpm"].mean_recall[0]
        )
        np.testing.assert_allclose(
            results["qcluster"].mean_precision[0], results["qpm"].mean_precision[0]
        )

    def test_empty_method_map_rejected(self, color_database):
        with pytest.raises(ValueError):
            compare_methods(color_database, {}, [0])
