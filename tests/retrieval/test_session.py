"""FeedbackSession: the paper's evaluation loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.hybridtree import HybridTree
from repro.index.multipoint import MultipointSearcher
from repro.retrieval.database import FeatureDatabase
from repro.retrieval.methods import QclusterMethod
from repro.retrieval.session import FeedbackSession
from repro.retrieval.user import SimulatedUser


@pytest.fixture
def blob_database(rng):
    """Three categories, one of them bimodal (a complex query).

    Category 0 is bimodal (modes at x = ±4); category 1 is broad clutter
    overlapping the region between the modes, so the initial spherical
    query confuses clutter with the second mode; category 2 is far away.
    With a large enough k a few second-mode images leak into the result
    list and feedback can discover and exploit them.
    """
    cat0_a = rng.normal(0.0, 0.5, (30, 3)) + np.array([-4.0, 0.0, 0.0])
    cat0_b = rng.normal(0.0, 0.5, (30, 3)) + np.array([4.0, 0.0, 0.0])
    cat1 = rng.normal(0.0, 3.0, (60, 3))
    cat2 = rng.normal(0.0, 0.5, (60, 3)) + np.array([0.0, 12.0, 0.0])
    vectors = np.vstack([cat0_a, cat0_b, cat1, cat2])
    labels = [0] * 60 + [1] * 60 + [2] * 60
    return FeatureDatabase(vectors, labels)


class TestFeedbackSession:
    def test_record_count_and_iterations(self, blob_database):
        session = FeedbackSession(blob_database, QclusterMethod(), k=40)
        result = session.run(0, n_iterations=3)
        assert len(result.records) == 4
        assert [r.iteration for r in result.records] == [0, 1, 2, 3]

    def test_quality_improves_with_feedback(self, blob_database):
        session = FeedbackSession(blob_database, QclusterMethod(), k=80)
        result = session.run(0, n_iterations=4)
        # Category 0 is bimodal: the initial Euclidean query sees mostly
        # one mode plus clutter; feedback must lift recall substantially.
        assert result.recalls[-1] > result.recalls[0] + 0.2

    def test_result_indices_are_ranked_topk(self, blob_database):
        session = FeedbackSession(blob_database, QclusterMethod(), k=25)
        result = session.run(5, n_iterations=1)
        assert result.records[0].result_indices.shape == (25,)

    def test_custom_user(self, blob_database):
        user = SimulatedUser(blob_database, target_category=1)
        session = FeedbackSession(blob_database, QclusterMethod(), k=30)
        result = session.run(0, n_iterations=2, user=user)
        assert len(result.records) == 3

    def test_index_searcher_gives_same_quality(self, blob_database):
        direct = FeedbackSession(blob_database, QclusterMethod(), k=30)
        direct_result = direct.run(0, n_iterations=2)
        tree = HybridTree(blob_database.vectors, leaf_capacity=16)
        indexed = FeedbackSession(
            blob_database, QclusterMethod(), k=30, searcher=MultipointSearcher(tree)
        )
        indexed_result = indexed.run(0, n_iterations=2)
        np.testing.assert_allclose(direct_result.recalls, indexed_result.recalls)

    def test_zero_iterations(self, blob_database):
        session = FeedbackSession(blob_database, QclusterMethod(), k=10)
        result = session.run(0, n_iterations=0)
        assert len(result.records) == 1

    def test_validation(self, blob_database):
        with pytest.raises(ValueError):
            FeedbackSession(blob_database, QclusterMethod(), k=0)
        session = FeedbackSession(blob_database, QclusterMethod(), k=10)
        with pytest.raises(IndexError):
            session.run(10_000)
        with pytest.raises(ValueError):
            session.run(0, n_iterations=-1)

    def test_k_clamped_to_database(self, blob_database):
        session = FeedbackSession(blob_database, QclusterMethod(), k=10_000)
        assert session.k == blob_database.size
