"""Shared fixtures for the service-layer tests.

One small labelled database, built once per test session: big enough
for multi-cluster feedback to happen, small enough that the whole
directory stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval import FeatureDatabase


@pytest.fixture(scope="session")
def database() -> FeatureDatabase:
    """120 points in 3-d: four well-separated Gaussian categories."""
    rng = np.random.default_rng(7)
    centers = np.array(
        [[0.0, 0.0, 0.0], [4.0, 0.0, 0.0], [0.0, 4.0, 0.0], [4.0, 4.0, 4.0]]
    )
    vectors = np.concatenate(
        [center + 0.4 * rng.standard_normal((30, 3)) for center in centers]
    )
    labels = np.repeat(np.arange(4), 30)
    return FeatureDatabase(vectors, labels)
