"""HTTP front-end: routes, errors, tenancy, lifecycle, load generator.

Runs a real :class:`RetrievalServer` on an ephemeral port (the event
loop on a daemon thread via ``start_in_background``) and talks to it
with ``http.client`` over keep-alive connections — the same wire path
production clients use, stdlib only.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service import BatchingConfig, RetrievalService
from repro.service.server import RetrievalServer, closed_loop_load


@pytest.fixture(scope="module")
def service(database):
    with RetrievalService(
        database, k=10, use_index=False, n_shards=1, cache_size=8
    ) as service:
        yield service


@pytest.fixture(scope="module")
def server(service):
    server = RetrievalServer(service, port=0, max_concurrent=8)
    host, port = server.start_in_background()
    yield server
    server.stop_background()


@pytest.fixture()
def conn(server):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    yield connection
    connection.close()


def call(conn, method, path, body=None, headers=None):
    status, parsed, _ = call_with_headers(conn, method, path, body, headers)
    return status, parsed


def call_with_headers(conn, method, path, body=None, headers=None):
    payload = json.dumps(body) if body is not None else None
    conn.request(method, path, body=payload, headers=headers or {})
    response = conn.getresponse()
    raw = response.read()
    if response.headers.get_content_type() == "application/json" and raw:
        return response.status, json.loads(raw), response.headers
    return response.status, raw, response.headers


class TestSessionLifecycle:
    def test_create_page_feedback_close(self, conn, service, database):
        status, created = call(conn, "POST", "/sessions", {"query": 5})
        assert status == 201
        session_id = created["session_id"]

        status, page = call(conn, "GET", f"/sessions/{session_id}/page?k=5")
        assert status == 200
        assert len(page["ids"]) == 5
        assert len(page["distances"]) == 5
        assert page["iteration"] == 0
        assert page["quality"]["exact"] is True

        status, refreshed = call(
            conn,
            "POST",
            f"/sessions/{session_id}/feedback",
            {"relevant_ids": page["ids"][:3], "k": 5},
        )
        assert status == 200
        assert refreshed["iteration"] == 1

        status, _ = call(conn, "DELETE", f"/sessions/{session_id}")
        assert status == 204
        status, body = call(conn, "GET", f"/sessions/{session_id}/page")
        assert status == 404

    def test_pages_round_trip_losslessly(self, conn, service, database):
        """A page read over HTTP is bit-identical to the in-process page
        (JSON doubles round-trip exactly)."""
        status, created = call(conn, "POST", "/sessions", {"query": 7})
        session_id = created["session_id"]
        _, page = call(conn, "GET", f"/sessions/{session_id}/page?k=7")
        direct = service.query(session_id, 7)
        assert page["ids"] == [int(i) for i in direct.ids]
        assert page["distances"] == [float(d) for d in direct.distances]
        call(conn, "DELETE", f"/sessions/{session_id}")

    def test_vector_query_and_explicit_session_id(self, conn, database):
        vector = [float(x) for x in database.vectors[3]]
        status, created = call(
            conn,
            "POST",
            "/sessions",
            {"query": vector, "session_id": "wire-vec"},
        )
        assert status == 201
        assert created["session_id"] == "wire-vec"
        status, page = call(conn, "GET", "/sessions/wire-vec/page?k=3")
        assert status == 200
        assert page["ids"][0] == 3  # nearest to its own stored vector
        call(conn, "DELETE", "/sessions/wire-vec")

    def test_tenant_header_labels_the_session(self, conn, service):
        status, created = call(
            conn,
            "POST",
            "/sessions",
            {"query": 1},
            headers={"X-Tenant": "acme"},
        )
        assert status == 201
        session_id = created["session_id"]
        assert service.tenant_of(session_id) == "acme"
        call(conn, "DELETE", f"/sessions/{session_id}")


class TestErrorPaths:
    def test_unknown_route_is_404(self, conn):
        status, body = call(conn, "GET", "/nope")
        assert status == 404
        assert "no route" in body["error"]

    def test_unknown_session_is_404(self, conn):
        status, _ = call(conn, "GET", "/sessions/ghost/page")
        assert status == 404

    def test_missing_query_is_400(self, conn):
        status, body = call(conn, "POST", "/sessions", {})
        assert status == 400
        assert "query" in body["error"]

    def test_boolean_query_is_400(self, conn):
        status, _ = call(conn, "POST", "/sessions", {"query": True})
        assert status == 400

    def test_malformed_json_is_400(self, conn):
        conn.request(
            "POST",
            "/sessions",
            body="{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 400
        response.read()

    def test_wrong_method_is_405(self, conn):
        status, created = call(conn, "POST", "/sessions", {"query": 2})
        session_id = created["session_id"]
        status, _ = call(conn, "POST", f"/sessions/{session_id}/page")
        assert status == 405
        status, _ = call(conn, "GET", f"/sessions/{session_id}/feedback")
        assert status == 405
        call(conn, "DELETE", f"/sessions/{session_id}")

    def test_oversized_body_is_413(self, conn):
        conn.request(
            "POST",
            "/sessions",
            headers={"Content-Length": str(9 * 1024 * 1024)},
        )
        response = conn.getresponse()
        assert response.status == 413
        response.read()
        # 413 short-circuits before the body read; the connection stays
        # usable for the next (well-formed) request.
        status, _ = call(conn, "GET", "/healthz")
        assert status == 200


class TestIntrospection:
    def test_healthz(self, conn):
        status, body = call(conn, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert "sessions" in body

    def test_stats_returns_metrics_snapshot(self, conn):
        status, body = call(conn, "GET", "/stats")
        assert status == 200
        assert "counters" in body

    def test_metrics_prometheus_exposition(self, conn):
        status, raw = call(conn, "GET", "/metrics")
        assert status == 200
        assert b"# TYPE" in raw

    def test_keep_alive_reuses_one_connection(self, conn):
        for _ in range(3):
            status, _ = call(conn, "GET", "/healthz")
            assert status == 200


class TestRequestIdAndTracing:
    def test_every_response_carries_a_request_id(self, conn):
        status, _, headers = call_with_headers(conn, "GET", "/healthz")
        assert status == 200
        assert headers["X-Request-Id"]
        assert headers["traceparent"].startswith("00-")

    def test_client_request_id_echoed_verbatim(self, conn):
        _, _, headers = call_with_headers(
            conn, "GET", "/healthz", headers={"X-Request-Id": "my-req-7"}
        )
        assert headers["X-Request-Id"] == "my-req-7"

    def test_unsafe_request_id_is_replaced_not_echoed(self, conn):
        """A header-unsafe id must not be reflected back (no smuggling)."""
        _, _, headers = call_with_headers(
            conn, "GET", "/healthz", headers={"X-Request-Id": "two words !"}
        )
        assert headers["X-Request-Id"] != "two words !"

    def test_traceparent_trace_id_round_trips(self, conn):
        trace_id = "1f" * 16
        _, _, headers = call_with_headers(
            conn,
            "GET",
            "/healthz",
            headers={"traceparent": f"00-{trace_id}-{'2e' * 8}-01"},
        )
        assert headers["traceparent"].split("-")[1] == trace_id
        assert headers["X-Request-Id"] == trace_id

    def test_garbage_traceparent_never_errors(self, conn):
        status, _, headers = call_with_headers(
            conn, "GET", "/healthz", headers={"traceparent": "not-a-trace"}
        )
        assert status == 200
        assert headers["traceparent"].startswith("00-")

    def test_error_payload_includes_request_id(self, conn):
        status, body, headers = call_with_headers(
            conn,
            "GET",
            "/sessions/ghost/page",
            headers={"X-Request-Id": "err-req-1"},
        )
        assert status == 404
        assert body["request_id"] == "err-req-1"
        assert headers["X-Request-Id"] == "err-req-1"

    def test_recent_errors_visible_in_stats(self, conn):
        call(conn, "GET", "/nope", headers={"X-Request-Id": "stats-err-9"})
        _, stats = call(conn, "GET", "/stats")
        recent = stats["server"]["recent_errors"]
        entry = next(e for e in recent if e["request_id"] == "stats-err-9")
        assert entry["status"] == 404
        assert entry["route"] == "/nope"


class TestSLOEndpoint:
    def test_debug_slo_reports_objectives_and_histograms(self, conn):
        status, created = call(
            conn, "POST", "/sessions", {"query": 9}, headers={"X-Tenant": "slo-co"}
        )
        session_id = created["session_id"]
        status, _ = call(conn, "GET", f"/sessions/{session_id}/page?k=5")
        assert status == 200

        status, body = call(conn, "GET", "/debug/slo")
        assert status == 200
        names = {obj["name"] for obj in body["objectives"]}
        assert {"availability", "latency"} <= names
        for objective in body["objectives"]:
            for stats in objective["windows"].values():
                assert {"total", "bad", "bad_fraction", "burn_rate"} <= set(stats)
        page_rows = [
            entry
            for entry in body["histograms"]
            if entry["route"] == "page" and entry["tenant"] == "slo-co"
        ]
        assert page_rows and page_rows[0]["count"] >= 1
        call(conn, "DELETE", f"/sessions/{session_id}")

    def test_slo_histograms_reach_prometheus_exposition(self, conn):
        status, created = call(conn, "POST", "/sessions", {"query": 2})
        session_id = created["session_id"]
        call(conn, "GET", f"/sessions/{session_id}/page?k=3")
        status, raw = call(conn, "GET", "/metrics")
        assert b"repro_request_duration_seconds_bucket" in raw
        assert b"repro_slo_error_budget_burn_rate" in raw
        call(conn, "DELETE", f"/sessions/{session_id}")


class TestLifecycle:
    def test_double_start_is_rejected(self, server):
        with pytest.raises(RuntimeError, match="already started"):
            server.start_in_background()

    def test_invalid_max_concurrent(self, service):
        with pytest.raises(ValueError, match="max_concurrent"):
            RetrievalServer(service, max_concurrent=0)

    def test_stop_background_is_idempotent(self, database):
        with RetrievalService(
            database, k=5, use_index=False, n_shards=1
        ) as service:
            server = RetrievalServer(service, port=0)
            server.start_in_background()
            server.stop_background()
            server.stop_background()  # no-op


class TestClosedLoopLoad:
    def test_load_generator_against_batched_service(self, database):
        """End-to-end: concurrent HTTP sessions through the batching
        executor return the same pages as a serial unbatched replay."""
        kwargs = dict(k=10, use_index=False, n_shards=1, cache_size=0)
        with RetrievalService(database, **kwargs) as service:
            server = RetrievalServer(service, port=0, max_concurrent=8)
            host, port = server.start_in_background()
            serial = closed_loop_load(
                host, port, sessions=1, rounds=2, k=5, query_ids=[4]
            )
            server.stop_background()
        assert not serial["errors"]

        with RetrievalService(
            database,
            batching=BatchingConfig(max_batch=8, max_wait_s=0.005),
            **kwargs,
        ) as service:
            server = RetrievalServer(service, port=0, max_concurrent=8)
            host, port = server.start_in_background()
            report = closed_loop_load(
                host,
                port,
                sessions=6,
                rounds=2,
                k=5,
                query_ids=[4] * 6,
                tenants=3,
            )
            stats = service.batching.stats()
            server.stop_background()
        assert not report["errors"]
        assert report["queries"] == 6 * 3
        assert report["qps"] > 0
        assert stats["batched_queries"] == 6 * 3
        # Every concurrent session of the same seed query returns the
        # serial session's exact pages, round for round.
        for (index, round_index), page in report["pages"].items():
            assert page == serial["pages"][(0, round_index)]


class TestApproximateOverHTTP:
    """The ANN tier through the wire: opt-in flag, honest provenance."""

    @pytest.fixture()
    def ann_conn(self, database):
        from repro.index.spill import SpillTreeConfig

        with RetrievalService(
            database,
            k=10,
            ann=SpillTreeConfig(leaf_capacity=16, max_leaves=4),
        ) as service:
            server = RetrievalServer(service, port=0, max_concurrent=4)
            host, port = server.start_in_background()
            connection = http.client.HTTPConnection(host, port, timeout=10)
            yield connection, service
            connection.close()
            server.stop_background()

    def test_approximate_page_carries_estimated_recall(self, ann_conn):
        conn, service = ann_conn
        _, created = call(conn, "POST", "/sessions", {"query": 5})
        session_id = created["session_id"]
        status, page = call(
            conn, "GET", f"/sessions/{session_id}/page?k=5&approximate=1"
        )
        assert status == 200
        assert page["quality"]["level"] == "approximate"
        assert page["quality"]["reasons"] == ["ann"]
        assert page["quality"]["estimated_recall"] == pytest.approx(
            service.ann_tree.calibrated_recall
        )

    def test_exact_page_has_no_recall_field(self, ann_conn):
        conn, _ = ann_conn
        _, created = call(conn, "POST", "/sessions", {"query": 5})
        session_id = created["session_id"]
        status, page = call(conn, "GET", f"/sessions/{session_id}/page?k=5")
        assert status == 200
        assert page["quality"]["exact"] is True
        assert "estimated_recall" not in page["quality"]

    def test_approximate_feedback_flag(self, ann_conn):
        conn, _ = ann_conn
        _, created = call(conn, "POST", "/sessions", {"query": 5})
        session_id = created["session_id"]
        _, page = call(
            conn, "GET", f"/sessions/{session_id}/page?k=5&approximate=1"
        )
        status, refined = call(
            conn,
            "POST",
            f"/sessions/{session_id}/feedback",
            {"relevant_ids": page["ids"][:3], "k": 5, "approximate": True},
        )
        assert status == 200
        assert refined["quality"]["level"] == "approximate"
        # Divergent trajectory: the exact path now reports it honestly.
        _, later = call(conn, "GET", f"/sessions/{session_id}/page?k=5")
        assert later["quality"]["level"] == "approximate"
