"""Unit tests of the batching executor's flow control.

`repro.service.batching.BatchingExecutor` is pure coordination — the
scan itself is an injected callable — so these tests drive it with stub
``execute``/``fallback`` functions and assert the coalescing, fairness,
deadline, backpressure, shedding and recovery contracts directly.
Requests are submitted from helper threads because ``submit`` blocks
until the micro-batch serves it.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.kernels import compile_query
from repro.service.batching import (
    BatchingConfig,
    BatchingExecutor,
    compatibility_key,
)
from repro.service.resilience import DeadlineBudget

KEY_A = ("scope-a", 8, ("CholeskyKernel",))
KEY_B = ("scope-b", 8, ("CholeskyKernel",))


class Submitter:
    """Runs one blocking ``submit`` on its own thread."""

    def __init__(self, executor, payload, key=KEY_A, *, tenant="default", budget=None):
        self.result = None
        self.error = None

        def run():
            try:
                self.result = executor.submit(
                    payload, key, 10, tenant=tenant, budget=budget
                )
            except BaseException as error:  # re-raised by join()
                self.error = error

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()

    def join(self, timeout=10.0):
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "submit never returned"
        if self.error is not None:
            raise self.error
        return self.result


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.001)


class RecordingExecute:
    """Stub batch scan: echoes payloads, records batch compositions."""

    def __init__(self, gate=None, fail_with=None):
        self.batches = []
        self.gate = gate  # threading.Event the first batch blocks on
        self.fail_with = fail_with
        self._first = True

    def __call__(self, batch):
        self.batches.append([(r.payload, r.tenant, r.approximate) for r in batch])
        if self.gate is not None and self._first:
            self._first = False
            self.gate.wait(10.0)
        if self.fail_with is not None:
            raise self.fail_with
        return [("served", request.payload) for request in batch]


class TestConfigValidation:
    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingConfig(max_batch=0)

    def test_rejects_negative_wait(self):
        with pytest.raises(ValueError, match="max_wait_s"):
            BatchingConfig(max_wait_s=-0.001)

    def test_rejects_zero_pending(self):
        with pytest.raises(ValueError, match="max_pending"):
            BatchingConfig(max_pending=0)

    def test_rejects_zero_shed_threshold(self):
        with pytest.raises(ValueError, match="shed_threshold"):
            BatchingConfig(shed_threshold=0)

    def test_defaults_are_valid(self):
        config = BatchingConfig()
        assert config.max_batch == 32
        assert config.shed_threshold is None


class TestCompatibilityKey:
    def test_same_shape_queries_share_a_key(self):
        from tests.core.test_kernels import random_query

        rng = np.random.default_rng(3)
        a = compile_query(random_query(rng, "inverse", g=2, p=6))
        b = compile_query(random_query(rng, "inverse", g=2, p=6))
        assert compatibility_key(a, "fp") == compatibility_key(b, "fp")

    def test_scheme_shape_separates_keys(self):
        from tests.core.test_kernels import random_query

        rng = np.random.default_rng(4)
        full = compile_query(random_query(rng, "inverse", g=2, p=6))
        diag = compile_query(random_query(rng, "diagonal", g=2, p=6))
        assert compatibility_key(full, "fp") != compatibility_key(diag, "fp")

    def test_scope_separates_keys(self):
        from tests.core.test_kernels import random_query

        rng = np.random.default_rng(5)
        compiled = compile_query(random_query(rng, "inverse", g=1, p=6))
        assert compatibility_key(compiled, "epoch-1") != compatibility_key(
            compiled, "epoch-2"
        )


class TestCoalescing:
    def test_single_submit_is_served(self):
        execute = RecordingExecute()
        with BatchingExecutor(
            execute, config=BatchingConfig(max_wait_s=0.001)
        ) as executor:
            assert executor.submit("q0", KEY_A, 10) == ("served", "q0")
        assert execute.batches == [[("q0", "default", False)]]

    def test_full_batch_dispatches_together(self):
        """With a long wait window, a full batch still goes immediately —
        and every member gets its own positional result."""
        execute = RecordingExecute()
        config = BatchingConfig(max_batch=4, max_wait_s=30.0)
        with BatchingExecutor(execute, config=config) as executor:
            submitters = [Submitter(executor, f"q{i}") for i in range(4)]
            results = {s.join() for s in submitters}
        assert results == {("served", f"q{i}") for i in range(4)}
        assert len(execute.batches) == 1
        assert len(execute.batches[0]) == 4

    def test_incompatible_keys_never_share_a_batch(self):
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        config = BatchingConfig(max_batch=8, max_wait_s=0.005)
        with BatchingExecutor(execute, config=config) as executor:
            # Park the dispatcher inside batch #1, then queue a mix.
            first = Submitter(executor, "seed")
            wait_for(lambda: len(execute.batches) == 1)
            mixed = [
                Submitter(executor, "a0", KEY_A),
                Submitter(executor, "b0", KEY_B),
                Submitter(executor, "a1", KEY_A),
                Submitter(executor, "b1", KEY_B),
            ]
            wait_for(lambda: executor.queue_depth == 4)
            gate.set()
            first.join()
            for submitter in mixed:
                submitter.join()
        served = sorted(p for batch in execute.batches for p, _, _ in batch)
        assert served == ["a0", "a1", "b0", "b1", "seed"]
        # No batch mixes an "a" payload with a "b" payload.
        for batch in execute.batches:
            initials = {payload[0] for payload, _, _ in batch}
            assert not ({"a", "b"} <= initials)

    def test_stats_shape(self):
        execute = RecordingExecute()
        with BatchingExecutor(
            execute, config=BatchingConfig(max_wait_s=0.001)
        ) as executor:
            executor.submit("q", KEY_A, 10, tenant="t0")
            stats = executor.stats()
        assert stats["submitted"] == 1
        assert stats["batches"] == 1
        assert stats["batched_queries"] == 1
        assert stats["queue_depth"] == 0
        assert stats["peak_queue_depth"] >= 1
        assert stats["shed"] == 0
        assert stats["fallbacks"] == 0
        assert stats["mean_batch_size"] == 1.0
        assert stats["p50_batch_size"] == 1.0
        assert stats["max_batch_size"] == 1.0
        assert stats["tenants_served"] == {"t0": 1}


class TestQueueWaitAccounting:
    def test_queue_wait_tracked_per_tenant(self):
        """A request parked behind a busy batch accrues measurable queue
        wait, attributed to its own tenant."""
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        config = BatchingConfig(max_batch=2, max_wait_s=0.005)
        with BatchingExecutor(execute, config=config) as executor:
            first = Submitter(executor, "seed", tenant="fast")
            wait_for(lambda: len(execute.batches) == 1)
            parked = Submitter(executor, "q1", tenant="slow-co")
            wait_for(lambda: executor.queue_depth == 1)
            time.sleep(0.02)  # let the parked request accrue wait
            gate.set()
            first.join()
            parked.join()
            stats = executor.stats()
        waits = stats["queue_wait_by_tenant"]
        assert set(waits) == {"fast", "slow-co"}
        slow = waits["slow-co"]
        assert slow["count"] == 1
        assert slow["sum"] >= 0.02
        assert slow["p50"] >= 0.02
        assert slow["p95"] >= slow["p50"] >= 0.0
        assert waits["fast"]["count"] == 1

    def test_queue_wait_reaches_prometheus(self):
        from repro.obs import prometheus_text

        execute = RecordingExecute()
        with BatchingExecutor(
            execute, config=BatchingConfig(max_wait_s=0.001)
        ) as executor:
            executor.submit("q", KEY_A, 10, tenant="acme")
            stats = executor.stats()
        text = prometheus_text({"batching": stats})
        assert 'repro_batch_queue_wait_seconds_count{tenant="acme"} 1' in text
        assert 'repro_batch_queue_wait_seconds{quantile="0.5",tenant="acme"}' in text


class TestTenantFairness:
    def test_round_robin_across_tenants(self):
        """With a flooding tenant and a light one queued together, the
        collected batch interleaves both — the light tenant is not
        starved behind the flood."""
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        config = BatchingConfig(max_batch=4, max_wait_s=0.005)
        with BatchingExecutor(execute, config=config) as executor:
            first = Submitter(executor, "seed", tenant="warm")
            wait_for(lambda: len(execute.batches) == 1)
            flood = [
                Submitter(executor, f"f{i}", tenant="flood") for i in range(6)
            ]
            wait_for(lambda: executor.queue_depth == 6)
            light = [
                Submitter(executor, f"l{i}", tenant="light") for i in range(2)
            ]
            wait_for(lambda: executor.queue_depth == 8)
            gate.set()
            first.join()
            for submitter in flood + light:
                submitter.join()
        # Batch #2 (first after the seed) must contain both tenants.
        second = execute.batches[1]
        assert len(second) == 4
        tenants = [tenant for _, tenant, _ in second]
        assert "light" in tenants and "flood" in tenants
        stats = executor.stats()
        assert stats["tenants_served"] == {"flood": 6, "light": 2, "warm": 1}

    def test_within_tenant_fifo_order_is_preserved(self):
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        config = BatchingConfig(max_batch=8, max_wait_s=0.005)
        with BatchingExecutor(execute, config=config) as executor:
            first = Submitter(executor, "seed")
            wait_for(lambda: len(execute.batches) == 1)
            ordered = []
            for i in range(4):
                ordered.append(Submitter(executor, f"q{i}", tenant="t"))
                wait_for(lambda: executor.queue_depth == i + 1)
            gate.set()
            first.join()
            for submitter in ordered:
                submitter.join()
        tenant_order = [
            payload
            for batch in execute.batches
            for payload, tenant, _ in batch
            if tenant == "t"
        ]
        assert tenant_order == ["q0", "q1", "q2", "q3"]


class TestDeadlines:
    def test_tight_budget_dispatches_before_max_wait(self):
        """A request whose deadline budget is nearly spent must not sit
        out the full collection window."""
        execute = RecordingExecute()
        config = BatchingConfig(max_batch=32, max_wait_s=30.0)
        with BatchingExecutor(execute, config=config) as executor:
            budget = DeadlineBudget(0.05)
            start = time.monotonic()
            result = executor.submit("urgent", KEY_A, 10, budget=budget)
            elapsed = time.monotonic() - start
        assert result == ("served", "urgent")
        assert elapsed < 5.0  # far below the 30 s window

    def test_infinite_budget_waits_for_mates(self):
        """An unconstrained request honours max_wait_s and picks up a
        mate that arrives inside the window."""
        execute = RecordingExecute()
        config = BatchingConfig(max_batch=8, max_wait_s=0.25)
        with BatchingExecutor(execute, config=config) as executor:
            first = Submitter(executor, "early")
            wait_for(lambda: executor.queue_depth == 1)
            second = Submitter(executor, "late")
            first.join()
            second.join()
        assert len(execute.batches) == 1
        assert len(execute.batches[0]) == 2


class TestBackpressure:
    def test_submit_blocks_at_max_pending(self):
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        config = BatchingConfig(max_batch=1, max_wait_s=0.0, max_pending=2)
        with BatchingExecutor(execute, config=config) as executor:
            # Batch #1 (the seed) parks the dispatcher; two more fill
            # the queue to max_pending.
            first = Submitter(executor, "seed")
            wait_for(lambda: len(execute.batches) == 1)
            queued = [Submitter(executor, f"q{i}") for i in range(2)]
            wait_for(lambda: executor.queue_depth == 2)
            # The next submitter must block at admission...
            blocked = Submitter(executor, "over")
            time.sleep(0.05)
            assert blocked.thread.is_alive()
            assert executor.queue_depth == 2
            # ...and proceed once the queue drains.
            gate.set()
            first.join()
            for submitter in queued:
                submitter.join()
            assert blocked.join() == ("served", "over")

    def test_shed_threshold_marks_requests_approximate(self):
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        config = BatchingConfig(
            max_batch=8, max_wait_s=0.0, max_pending=16, shed_threshold=2
        )
        with BatchingExecutor(execute, config=config) as executor:
            first = Submitter(executor, "seed")
            wait_for(lambda: len(execute.batches) == 1)
            # Queue grows 1, 2, 3: the third arrival sees pending >= 2.
            queued = []
            for i in range(3):
                queued.append(Submitter(executor, f"q{i}"))
                wait_for(lambda: executor.queue_depth == i + 1)
            gate.set()
            first.join()
            for submitter in queued:
                submitter.join()
        flags = {
            payload: approximate
            for batch in execute.batches
            for payload, _, approximate in batch
        }
        assert flags == {"seed": False, "q0": False, "q1": False, "q2": True}
        assert executor.stats()["shed"] == 1

    def test_shed_to_serves_inline_off_the_queue(self):
        """With a shed target, shed requests never ride a micro-batch:
        they are served on the submitter's own thread by ``shed_to``."""
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        shed_served = []

        def shed_to(request):
            shed_served.append(request.payload)
            return ("ann", request.payload)

        config = BatchingConfig(
            max_batch=8, max_wait_s=0.0, max_pending=16, shed_threshold=2
        )
        with BatchingExecutor(execute, shed_to=shed_to, config=config) as executor:
            first = Submitter(executor, "seed")
            wait_for(lambda: len(execute.batches) == 1)
            queued = [Submitter(executor, "q0"), Submitter(executor, "q1")]
            wait_for(lambda: executor.queue_depth == 2)
            # The third arrival crosses the threshold and must return
            # immediately via shed_to, while the batch is still gated.
            shed = Submitter(executor, "q2")
            assert shed.join() == ("ann", "q2")
            gate.set()
            first.join()
            for submitter, payload in zip(queued, ("q0", "q1")):
                assert submitter.join() == ("served", payload)
        assert shed_served == ["q2"]
        assert executor.stats()["shed"] == 1
        # Shed payloads never reached the batch path.
        batched = {p for batch in execute.batches for p, _, _ in batch}
        assert "q2" not in batched


class TestRecovery:
    def test_batch_error_falls_back_per_request(self):
        execute = RecordingExecute(fail_with=RuntimeError("scan exploded"))
        fallback_calls = []

        def fallback(request):
            fallback_calls.append(request.payload)
            return ("solo", request.payload)

        config = BatchingConfig(max_batch=4, max_wait_s=30.0)
        with BatchingExecutor(execute, fallback=fallback, config=config) as executor:
            submitters = [Submitter(executor, f"q{i}") for i in range(4)]
            results = {s.join() for s in submitters}
        assert results == {("solo", f"q{i}") for i in range(4)}
        assert sorted(fallback_calls) == [f"q{i}" for i in range(4)]
        assert executor.stats()["fallbacks"] == 4

    def test_batch_error_without_fallback_propagates(self):
        execute = RecordingExecute(fail_with=RuntimeError("scan exploded"))
        with BatchingExecutor(
            execute, config=BatchingConfig(max_wait_s=0.001)
        ) as executor:
            with pytest.raises(RuntimeError, match="scan exploded"):
                executor.submit("q", KEY_A, 10)

    def test_wrong_result_count_is_recovered(self):
        def execute(batch):
            return ["only-one"]  # for a 2-request batch

        config = BatchingConfig(max_batch=2, max_wait_s=30.0)
        with BatchingExecutor(
            execute, fallback=lambda r: ("solo", r.payload), config=config
        ) as executor:
            submitters = [Submitter(executor, f"q{i}") for i in range(2)]
            results = {s.join() for s in submitters}
        assert results == {("solo", "q0"), ("solo", "q1")}

    def test_failing_fallback_propagates_to_the_submitter(self):
        execute = RecordingExecute(fail_with=RuntimeError("batch down"))

        def fallback(request):
            raise ValueError(f"solo down for {request.payload}")

        with BatchingExecutor(
            execute, fallback=fallback, config=BatchingConfig(max_wait_s=0.001)
        ) as executor:
            with pytest.raises(ValueError, match="solo down for q"):
                executor.submit("q", KEY_A, 10)


class TestLifecycle:
    def test_shutdown_rejects_new_submits(self):
        executor = BatchingExecutor(RecordingExecute())
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit("q", KEY_A, 10)

    def test_shutdown_drains_queued_requests(self):
        gate = threading.Event()
        execute = RecordingExecute(gate=gate)
        config = BatchingConfig(max_batch=1, max_wait_s=0.0)
        executor = BatchingExecutor(execute, config=config)
        first = Submitter(executor, "seed")
        wait_for(lambda: len(execute.batches) == 1)
        queued = [Submitter(executor, f"q{i}") for i in range(3)]
        wait_for(lambda: executor.queue_depth == 3)
        gate.set()
        executor.shutdown()  # must serve the 3 queued requests first
        assert first.join() == ("served", "seed")
        assert {s.join() for s in queued} == {("served", f"q{i}") for i in range(3)}

    def test_shutdown_is_idempotent(self):
        executor = BatchingExecutor(RecordingExecute())
        executor.shutdown()
        executor.shutdown()  # no hang, no error

    def test_context_manager_shuts_down(self):
        with BatchingExecutor(RecordingExecute()) as executor:
            pass
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit("q", KEY_A, 10)
