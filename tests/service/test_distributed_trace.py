"""Cross-process trace stitching: worker scan spans join the request tree.

The acceptance path of the distributed-tracing PR: a query served by the
process-pool backend (and, end-to-end, over HTTP with batching enabled)
must produce ONE trace — the coordinator's request spans with the
worker-side shard scans grafted in, all sharing the propagated trace id.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.obs import Tracer, trace_to_jsonl_lines
from repro.service import BatchingConfig, RetrievalService
from repro.service.server import RetrievalServer
from repro.store import FeatureStore, build_store


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, database):
    path = tmp_path_factory.mktemp("trace-store") / "trace.qcs"
    return build_store(database, path, n_shards=4)


def walk(span):
    yield span
    for child in span.get("children", ()):
        yield from walk(child)


def worker_spans(trace):
    return [
        span
        for span in walk(trace)
        if span.get("attributes", {}).get("path") == "worker"
    ]


class TestProcessBackendStitching:
    def test_query_trace_contains_worker_scan_spans(self, store_path):
        tracer = Tracer()
        store = FeatureStore.open(store_path)
        with RetrievalService(
            store,
            k=10,
            use_index=False,
            scan_backend="processes",
            max_workers=2,
            tracer=tracer,
            cache_size=0,
        ) as service:
            session = service.create_session(0)
            page = service.query(session)
        assert page.quality.is_exact
        query_trace = next(
            trace for trace in tracer.traces() if trace["name"] == "query"
        )
        grafted = worker_spans(query_trace)
        assert len(grafted) == store.n_shards  # one scan per shard
        shards = {span["attributes"]["shard"] for span in grafted}
        assert shards == set(range(store.n_shards))
        for span in grafted:
            assert span["name"] == "scan"
            assert span["trace_id"] == query_trace["trace_id"]
            assert span["attributes"]["pid"] > 0

    def test_grafted_spans_are_connected_to_the_request_root(self, store_path):
        """Flattened JSONL reconstructs one tree: every worker span's
        parent chain reaches the query root."""
        tracer = Tracer()
        with RetrievalService(
            FeatureStore.open(store_path),
            k=10,
            use_index=False,
            scan_backend="processes",
            max_workers=2,
            tracer=tracer,
            cache_size=0,
        ) as service:
            session = service.create_session(1)
            service.query(session)
        query_trace = next(
            trace for trace in tracer.traces() if trace["name"] == "query"
        )
        lines = [json.loads(line) for line in trace_to_jsonl_lines(query_trace)]
        spans = {
            record["span_id"]: record
            for record in lines
            if record.get("kind") != "event"
        }
        roots = [s for s in spans.values() if s["span_id"] == query_trace["span_id"]]
        assert len(roots) == 1
        for record in spans.values():
            node, hops = record, 0
            while node["span_id"] != query_trace["span_id"]:
                assert hops < 20, "unreachable span: broken parent chain"
                node = spans[node["parent_id"]]
                hops += 1

    def test_worker_spans_carry_scan_events(self, store_path):
        """Prune/kernel events recorded inside the worker process survive
        the round-trip."""
        tracer = Tracer()
        with RetrievalService(
            FeatureStore.open(store_path),
            k=10,
            use_index=False,
            scan_backend="processes",
            max_workers=1,
            tracer=tracer,
            cache_size=0,
        ) as service:
            session = service.create_session(2)
            service.query(session)
        query_trace = next(
            trace for trace in tracer.traces() if trace["name"] == "query"
        )
        events = [
            event["name"]
            for span in worker_spans(query_trace)
            for event in walk_events(span)
        ]
        assert events, "worker spans recorded no events"

    def test_disabled_tracer_leaves_results_identical(self, store_path):
        """Tracing must not perturb ranking: same page bytes either way."""
        def run(tracer):
            with RetrievalService(
                FeatureStore.open(store_path),
                k=10,
                use_index=False,
                scan_backend="processes",
                max_workers=2,
                tracer=tracer,
                cache_size=0,
            ) as service:
                session = service.create_session(3)
                return service.query(session)

        traced = run(Tracer())
        untraced = run(None)
        assert traced.ids.tobytes() == untraced.ids.tobytes()
        assert traced.distances.tobytes() == untraced.distances.tobytes()


def walk_events(span):
    yield from span.get("events", ())
    for child in span.get("children", ()):
        yield from walk_events(child)


class TestHttpEndToEnd:
    def test_http_batched_process_query_is_one_stitched_trace(
        self, store_path, database
    ):
        """The full acceptance chain: http_request → query → scan → batch
        → worker scans, one trace id end to end, client traceparent
        adopted and echoed."""
        tracer = Tracer()
        client_trace = "ab" * 16
        client_span = "cd" * 8
        with RetrievalService(
            FeatureStore.open(store_path),
            k=10,
            use_index=False,
            scan_backend="processes",
            max_workers=2,
            tracer=tracer,
            cache_size=0,
            batching=BatchingConfig(max_batch=4, max_wait_s=0.001),
        ) as service:
            server = RetrievalServer(service, port=0, max_concurrent=4)
            host, port = server.start_in_background()
            try:
                conn = http.client.HTTPConnection(host, port, timeout=10)
                conn.request(
                    "POST", "/sessions", body=json.dumps({"query": 5}),
                    headers={"Content-Type": "application/json"},
                )
                created = json.loads(conn.getresponse().read())
                conn.request(
                    "GET",
                    f"/sessions/{created['session_id']}/page?k=5",
                    headers={
                        "traceparent": f"00-{client_trace}-{client_span}-01"
                    },
                )
                response = conn.getresponse()
                response.read()
                echoed = response.getheader("traceparent")
                assert response.getheader("X-Request-Id")
                conn.close()
            finally:
                server.stop_background()

        assert echoed is not None and echoed.startswith(f"00-{client_trace}-")
        http_trace = next(
            trace
            for trace in tracer.traces()
            if trace["name"] == "http_request"
            and trace["attributes"].get("route", "").endswith("/page")
        )
        # The root adopted the client's identity.
        assert http_trace["trace_id"] == client_trace
        assert http_trace["parent_id"] == client_span
        names = {span["name"] for span in walk(http_trace)}
        assert {"http_request", "query", "scan", "batch"} <= names
        grafted = worker_spans(http_trace)
        assert grafted, "no worker spans stitched into the HTTP trace"
        assert {span["trace_id"] for span in walk(http_trace)} == {client_trace}
