"""RetrievalService: lifecycle, caching, sharding, and the two
acceptance-critical properties — parallel == serial rankings and
lossless evict/resume."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.retrieval import SimulatedUser
from repro.service import RetrievalService, SessionNotFound


def drive_session(service, database, query_id, rounds=3, session_id=None):
    """create → (query, feedback)^rounds; returns every ResultPage."""
    session = service.create_session(query_id, session_id=session_id)
    user = SimulatedUser(database, database.category_of(query_id))
    pages = [service.query(session)]
    for _ in range(rounds):
        judgment = user.judge(pages[-1].ids)
        pages.append(service.feedback(session, judgment.relevant_indices, judgment.scores))
    return session, pages


class TestLifecycle:
    def test_create_query_feedback_close(self, database):
        service = RetrievalService(database, k=10)
        session = service.create_session(0)
        page = service.query(session)
        assert len(page) == 10 and page.iteration == 0
        assert page.ids[0] == 0  # the query image is its own nearest neighbour
        relevant = database.members_of(database.category_of(0))[:5]
        refined = service.feedback(session, relevant)
        assert refined.iteration == 1
        service.close(session)
        with pytest.raises(SessionNotFound):
            service.query(session)

    def test_query_by_vector(self, database):
        service = RetrievalService(database, k=10)
        session = service.create_session(database.vectors[3])
        page = service.query(session)
        assert page.ids[0] == 3

    def test_query_validation(self, database):
        service = RetrievalService(database, k=10)
        with pytest.raises(IndexError):
            service.create_session(database.size)
        with pytest.raises(ValueError):
            service.create_session(np.zeros(17))
        session = service.create_session(0)
        with pytest.raises(IndexError):
            service.feedback(session, [database.size])
        with pytest.raises(ValueError):
            service.query(session, k=0)

    def test_duplicate_session_id_rejected(self, database):
        service = RetrievalService(database, k=10)
        service.create_session(0, session_id="dup")
        with pytest.raises(ValueError):
            service.create_session(1, session_id="dup")

    def test_empty_feedback_advances_iteration_only(self, database):
        service = RetrievalService(database, k=10)
        session = service.create_session(0)
        before = service.query(session)
        after = service.feedback(session, [])
        assert after.iteration == 1
        np.testing.assert_array_equal(before.ids, after.ids)

    def test_context_manager_shuts_down(self, database):
        with RetrievalService(database, k=5) as service:
            session = service.create_session(0)
            assert len(service.query(session)) == 5


class TestCaching:
    def test_repeated_page_fetch_hits_cache(self, database):
        service = RetrievalService(database, k=10)
        session = service.create_session(0)
        first = service.query(session)
        second = service.query(session)
        np.testing.assert_array_equal(first.ids, second.ids)
        counters = service.metrics_snapshot()["counters"]
        assert counters["cache_hits"] == 1
        assert counters["cache_misses"] == 1

    def test_feedback_invalidates_cached_pages(self, database):
        service = RetrievalService(database, k=10)
        session = service.create_session(0)
        service.query(session)
        relevant = database.members_of(database.category_of(0))[:5]
        service.feedback(session, relevant)
        assert len(service.cache) >= 1  # the refreshed page is cached
        # The pre-feedback page is gone: fetching the *current* page
        # after one more identical fetch hits, but the metrics show the
        # old entry was dropped rather than reused.
        service.query(session)
        counters = service.metrics_snapshot()["counters"]
        assert counters["cache_misses"] == 2  # initial page + refreshed page

    def test_identical_state_shares_cache_across_sessions(self, database):
        service = RetrievalService(database, k=10)
        first = service.create_session(0)
        second = service.create_session(0)
        service.query(first)
        service.query(second)  # same query state → same fingerprint
        counters = service.metrics_snapshot()["counters"]
        assert counters["cache_hits"] == 1

    def test_disabled_cache_recomputes(self, database):
        service = RetrievalService(database, k=10, cache_size=0)
        session = service.create_session(0)
        service.query(session)
        service.query(session)
        assert service.metrics_snapshot()["counters"]["cache_misses"] == 2


class TestKernelCounters:
    def test_kernel_cache_events_are_counted(self, database):
        service = RetrievalService(database, k=10, cache_size=0)
        session = service.create_session(3)
        service.query(session)
        counters = service.metrics_snapshot()["counters"]
        first_total = counters.get("kernel_cache_hits", 0) + counters.get(
            "kernel_cache_misses", 0
        )
        assert first_total == 1
        service.query(session)  # same query object → memoized kernel, a hit
        snapshot = service.metrics_snapshot()
        assert snapshot["counters"].get("kernel_cache_hits", 0) >= 1
        assert 0.0 <= snapshot["kernel_cache_hit_rate"] <= 1.0
        assert snapshot["kernels"]["capacity"] > 0
        service.shutdown()

    def test_sessions_sharing_state_share_compiled_kernels(self, database):
        """Content addressing: a second session asking the same question
        reuses the first session's compiled kernels."""
        service = RetrievalService(database, k=10, cache_size=0)
        first = service.create_session(5)
        second = service.create_session(5)
        service.query(first)
        before = service.metrics_snapshot()["counters"].get("kernel_cache_hits", 0)
        service.query(second)  # same cluster state, distinct query object
        after = service.metrics_snapshot()["counters"].get("kernel_cache_hits", 0)
        assert after == before + 1
        service.shutdown()


class TestShardedScan:
    def test_sharded_scan_matches_single_scan(self, database):
        sharded = RetrievalService(
            database, k=15, use_index=False, n_shards=4, cache_size=0
        )
        single = RetrievalService(
            database, k=15, use_index=False, n_shards=1, cache_size=0
        )
        assert sharded.n_shards == 4 and single.n_shards == 1
        for query_id in (0, 31, 67, 119):
            a = sharded.query(sharded.create_session(query_id))
            b = single.query(single.create_session(query_id))
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)

    def test_index_and_scan_agree(self, database):
        indexed = RetrievalService(database, k=15, cache_size=0)
        scanned = RetrievalService(database, k=15, use_index=False, cache_size=0)
        _, pages_a = drive_session(indexed, database, 5)
        _, pages_b = drive_session(scanned, database, 5)
        for a, b in zip(pages_a, pages_b):
            np.testing.assert_array_equal(a.ids, b.ids)


class TestConcurrencyCorrectness:
    """N threads over disjoint sessions == the same sessions run serially."""

    QUERY_IDS = (0, 17, 35, 52, 71, 88, 103, 114)

    def collect_serial(self, database):
        service = RetrievalService(database, k=12, n_shards=2, max_workers=2)
        results = {}
        for query_id in self.QUERY_IDS:
            _, pages = drive_session(service, database, query_id)
            results[query_id] = pages
        service.shutdown()
        return results

    def test_parallel_rankings_are_byte_identical_to_serial(self, database):
        serial = self.collect_serial(database)
        service = RetrievalService(database, k=12, n_shards=2, max_workers=2)
        parallel = {}
        errors = []
        barrier = threading.Barrier(len(self.QUERY_IDS))

        def worker(query_id):
            try:
                barrier.wait(timeout=30)  # maximize interleaving
                _, pages = drive_session(service, database, query_id)
                parallel[query_id] = pages
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(query_id,))
            for query_id in self.QUERY_IDS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.shutdown()
        assert not errors
        for query_id in self.QUERY_IDS:
            for serial_page, parallel_page in zip(serial[query_id], parallel[query_id]):
                assert serial_page.ids.tobytes() == parallel_page.ids.tobytes()
                assert (
                    serial_page.distances.tobytes()
                    == parallel_page.distances.tobytes()
                )

    def test_concurrent_sessions_with_eviction_churn(self, database):
        """Correctness holds even while the store is evicting/restoring."""
        serial = self.collect_serial(database)
        service = RetrievalService(database, k=12, capacity=3)
        parallel = {}
        errors = []

        def worker(query_id):
            try:
                _, pages = drive_session(service, database, query_id)
                parallel[query_id] = pages
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(query_id,))
            for query_id in self.QUERY_IDS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.shutdown()
        assert not errors
        assert service.metrics.counter("sessions_evicted") > 0
        for query_id in self.QUERY_IDS:
            for serial_page, parallel_page in zip(serial[query_id], parallel[query_id]):
                np.testing.assert_array_equal(serial_page.ids, parallel_page.ids)
                np.testing.assert_array_equal(
                    serial_page.distances, parallel_page.distances
                )


class TestEvictResumeRoundTrip:
    def test_evicted_session_resumes_losslessly(self, database, tmp_path):
        reference_service = RetrievalService(database, k=12, capacity=16)
        _, reference = drive_session(reference_service, database, 0, rounds=4)

        service = RetrievalService(database, k=12, capacity=1, checkpoint_dir=tmp_path)
        session, pages = drive_session(
            service, database, 0, rounds=2, session_id="victim"
        )
        # A second session forces the first out to its disk checkpoint.
        service.create_session(42, session_id="intruder")
        service.query("intruder")
        assert "victim" in service.store.archived_ids
        # Continue the evicted session: it restores and carries on.
        user = SimulatedUser(database, database.category_of(0))
        for _ in range(2):
            judgment = user.judge(pages[-1].ids)
            pages.append(
                service.feedback(session, judgment.relevant_indices, judgment.scores)
            )
        assert service.metrics.counter("sessions_restored") >= 1
        assert len(pages) == len(reference)
        for expected, actual in zip(reference, pages):
            np.testing.assert_array_equal(expected.ids, actual.ids)
            np.testing.assert_array_equal(expected.distances, actual.distances)

    def test_restored_cluster_state_is_exact(self, database):
        service = RetrievalService(database, k=12, capacity=1)
        session, _ = drive_session(service, database, 0, rounds=2, session_id="s")
        with service.store.lease(session) as managed:
            engine = managed.method.engine
            expected = [
                (cluster.centroid.copy(), cluster.covariance.copy(), cluster.weight)
                for cluster in engine.clusters
            ]
        service.create_session(42)  # evict
        with service.store.lease(session) as managed:  # restore
            clusters = managed.method.engine.clusters
            assert len(clusters) == len(expected)
            for cluster, (centroid, covariance, weight) in zip(clusters, expected):
                np.testing.assert_array_equal(cluster.centroid, centroid)
                np.testing.assert_array_equal(cluster.covariance, covariance)
                assert cluster.weight == weight
