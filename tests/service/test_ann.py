"""The service's ANN tier: honest approximation end to end.

Covers the serving-stack contract around the spill tree: the exact
default stays byte-identical with the tier built, approximate pages
are stamped ``ResultQuality(approximate, estimated_recall=...)`` and
never silent, a mid-descent fault rescues through the exact scan as an
announced ``ann_fallback``, provenance is sticky only once feedback
consumed an approximate page, and a tripped degradation guard can
prefer the ANN tier over the exact fallback scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, activate_faults
from repro.index.spill import SpillTreeConfig
from repro.service import RetrievalService

#: Small leaves so the 120-row test database actually splits and the
#: defeatist descent is a real approximation, not a full scan.
ANN_CONFIG = SpillTreeConfig(leaf_capacity=16, max_leaves=4)

DESCEND_OUTAGE = FaultPlan(
    specs=(FaultSpec(site="index.descend", kind="error", probability=1.0),)
)


def ann_service(database, **kwargs):
    return RetrievalService(database, k=10, ann=ANN_CONFIG, **kwargs)


class TestExactDefault:
    def test_exact_requests_are_byte_identical_with_the_tier_built(self, database):
        """Building the ANN tier must not perturb the default path."""
        with RetrievalService(database, k=10) as plain, ann_service(database) as tiered:
            for service in (plain, tiered):
                service.create_session(3, session_id="s")
            page_plain = plain.query("s")
            page_tiered = tiered.query("s")
            np.testing.assert_array_equal(page_plain.ids, page_tiered.ids)
            np.testing.assert_array_equal(page_plain.distances, page_tiered.distances)
            assert page_tiered.quality.level == "exact"

    def test_viewing_an_approximate_page_does_not_taint_the_session(self, database):
        with ann_service(database) as service:
            session = service.create_session(3)
            approximate = service.query(session, approximate=True)
            assert approximate.quality.level == "approximate"
            exact = service.query(session)
            assert exact.quality.level == "exact"

    def test_approximate_page_bypasses_the_result_cache(self, database):
        """An approximate page must never be returned to an exact
        request for the same session state, or vice versa."""
        with ann_service(database) as service:
            session = service.create_session(3)
            exact_first = service.query(session)
            approximate = service.query(session, approximate=True)
            exact_again = service.query(session)
            assert exact_again.quality.level == "exact"
            np.testing.assert_array_equal(exact_first.ids, exact_again.ids)
            assert approximate.quality.level == "approximate"


class TestApproximateServing:
    def test_page_is_stamped_with_the_calibrated_recall(self, database):
        with ann_service(database) as service:
            session = service.create_session(3)
            page = service.query(session, approximate=True)
            assert page.quality.level == "approximate"
            assert page.quality.reasons == ("ann",)
            assert page.quality.estimated_recall == service.ann_tree.calibrated_recall
            assert len(page) == 10

    def test_requires_the_tier(self, database):
        with RetrievalService(database, k=10) as service:
            session = service.create_session(0)
            with pytest.raises(ValueError, match="ann"):
                service.query(session, approximate=True)
            with pytest.raises(ValueError, match="ann"):
                service.feedback(session, [0], approximate=True)
        with pytest.raises(ValueError, match="prefer_ann"):
            RetrievalService(database, k=10, prefer_ann=True)

    def test_feedback_on_an_approximate_page_is_sticky(self, database):
        """Once feedback consumed an approximate page the trajectory
        diverged: later pages stay marked even on the exact path."""
        with ann_service(database) as service:
            session = service.create_session(3)
            page = service.query(session, approximate=True)
            relevant = [int(i) for i in page.ids[:3]]
            refined = service.feedback(session, relevant, approximate=True)
            assert refined.quality.level == "approximate"
            later = service.query(session)  # exact path, divergent state
            assert later.quality.level == "approximate"
            assert "ann" in later.quality.reasons

    def test_metrics_and_stats_surface(self, database):
        with ann_service(database) as service:
            session = service.create_session(3)
            service.query(session, approximate=True)
            snapshot = service.metrics_snapshot()
            assert snapshot["counters"]["ann_scans"] == 1
            assert snapshot["counters"]["results_approximate"] == 1
            assert snapshot["ann"]["n_leaves"] > 1
            assert snapshot["ann"]["calibrated_recall"] is not None


class TestFallback:
    def test_descend_outage_rescues_through_the_exact_scan(self, database):
        with ann_service(database) as service:
            session = service.create_session(3)
            with activate_faults(DESCEND_OUTAGE):
                page = service.query(session, approximate=True)
            assert page.quality.level == "approximate"
            assert "ann_fallback" in page.quality.reasons
            # The rescue ran the exact scan, so the *content* matches
            # the exact page and the conservative stamp claims no loss.
            assert page.quality.estimated_recall == 1.0
            exact = service.query(session)
            np.testing.assert_array_equal(page.ids, exact.ids)
            counters = service.metrics_snapshot()["counters"]
            assert counters["ann_fallbacks"] == 1


class TestPreferAnn:
    def test_tripped_guard_lands_on_the_ann_tier(self, database):
        """With ``prefer_ann`` a deadline-tripped session is served by
        the spill tree — announced — instead of the exact fallback."""
        with ann_service(
            database,
            prefer_ann=True,
            soft_deadline_s=1e-9,  # every index search misses
            deadline_trip=1,
        ) as service:
            session = service.create_session(3)
            first = service.query(session)  # index search, trips the guard
            assert first.quality.level == "exact"
            second = service.query(session, k=9)  # new state, guard active
            assert second.quality.level == "approximate"
            assert second.quality.reasons == ("ann",)

    def test_without_prefer_ann_the_fallback_stays_exact(self, database):
        with ann_service(
            database, soft_deadline_s=1e-9, deadline_trip=1
        ) as service:
            session = service.create_session(3)
            service.query(session)
            page = service.query(session, k=9)
            assert page.quality.level == "exact"
