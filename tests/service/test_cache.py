"""ResultCache and the query-state fingerprint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.service import ResultCache, fingerprint_query


def make_query(center=(0.0, 0.0), weight=1.0, scale=1.0):
    return DisjunctiveQuery(
        [
            QueryPoint(
                center=np.asarray(center, dtype=float),
                inverse=scale * np.eye(2),
                weight=weight,
            )
        ]
    )


class TestFingerprint:
    def test_identical_state_same_fingerprint(self):
        assert fingerprint_query(make_query(), 10) == fingerprint_query(make_query(), 10)

    def test_k_changes_fingerprint(self):
        assert fingerprint_query(make_query(), 10) != fingerprint_query(make_query(), 11)

    def test_mean_changes_fingerprint(self):
        assert fingerprint_query(make_query(), 10) != fingerprint_query(
            make_query(center=(0.0, 1e-9)), 10
        )

    def test_covariance_changes_fingerprint(self):
        assert fingerprint_query(make_query(), 10) != fingerprint_query(
            make_query(scale=2.0), 10
        )

    def test_mass_changes_fingerprint(self):
        assert fingerprint_query(make_query(), 10) != fingerprint_query(
            make_query(weight=2.0), 10
        )

    def test_multipoint_order_matters(self):
        a = QueryPoint(center=np.zeros(2), inverse=np.eye(2), weight=1.0)
        b = QueryPoint(center=np.ones(2), inverse=np.eye(2), weight=2.0)
        assert fingerprint_query(DisjunctiveQuery([a, b]), 5) != fingerprint_query(
            DisjunctiveQuery([b, a]), 5
        )


class TestResultCache:
    def page(self, seed: int):
        return np.arange(seed, seed + 3), np.linspace(0.0, 1.0, 3)

    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", *self.page(0))
        ids, distances = cache.get("a")
        np.testing.assert_array_equal(ids, np.arange(3))
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", *self.page(0))
        cache.put("b", *self.page(1))
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", *self.page(2))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_invalidate_by_owner(self):
        cache = ResultCache(capacity=8)
        cache.put("a1", *self.page(0), owner="s1")
        cache.put("a2", *self.page(1), owner="s1")
        cache.put("b1", *self.page(2), owner="s2")
        assert cache.invalidate("s1") == 2
        assert cache.get("a1") is None and cache.get("a2") is None
        assert cache.get("b1") is not None
        assert cache.invalidate("s1") == 0

    def test_eviction_untags_owner(self):
        cache = ResultCache(capacity=1)
        cache.put("a", *self.page(0), owner="s1")
        cache.put("b", *self.page(1), owner="s1")  # evicts a
        assert cache.invalidate("s1") == 1  # only b was still tagged

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", *self.page(0))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put("a", *self.page(0), owner="s1")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)
