"""Degradation policy/guard plus the service-level fallback paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, activate_faults
from repro.service import DegradationPolicy, RetrievalService, SessionGuard


class TestPolicyValidation:
    def test_defaults(self):
        policy = DegradationPolicy()
        assert policy.soft_deadline_s is None
        assert policy.trip_after == 1

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError):
            DegradationPolicy(soft_deadline_s=0.0)

    def test_zero_trip_rejected(self):
        with pytest.raises(ValueError):
            DegradationPolicy(trip_after=0)


class TestSessionGuard:
    def test_no_deadline_never_trips(self):
        guard = SessionGuard(DegradationPolicy())
        assert guard.record_elapsed(1e9) is False
        assert not guard.active

    def test_single_miss_trips_by_default(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1))
        assert guard.record_elapsed(0.2) is True
        assert guard.active and guard.tripped_by == "deadline"

    def test_trip_after_counts_consecutive_misses(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1, trip_after=3))
        assert guard.record_elapsed(0.2) is True
        assert guard.record_elapsed(0.05) is False  # resets the streak
        guard.record_elapsed(0.2)
        guard.record_elapsed(0.2)
        assert not guard.active
        guard.record_elapsed(0.2)
        assert guard.active

    def test_error_trip_is_sticky_across_feedback(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1))
        guard.record_error()
        guard.reset_for_new_query()
        assert guard.active and guard.tripped_by == "error"

    def test_deadline_trip_resets_on_feedback(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1))
        guard.record_elapsed(0.2)
        assert guard.active
        guard.reset_for_new_query()
        assert not guard.active and guard.strikes == 0


class TestGuardEdgeCases:
    def test_error_trip_wins_over_later_deadline_miss(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1, trip_after=2))
        guard.record_error()
        # The miss is still reported (the caller meters every miss)...
        assert guard.record_elapsed(0.2) is True
        # ...but the trip attribution is not downgraded to "deadline".
        assert guard.tripped_by == "error"

    def test_deadline_strike_then_error_escalates_to_sticky_trip(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1, trip_after=2))
        assert guard.record_elapsed(0.2) is True  # strike 1 of 2: not tripped
        assert not guard.active
        guard.record_error()
        assert guard.tripped_by == "error"
        guard.reset_for_new_query()  # error trips survive feedback
        assert guard.active and guard.tripped_by == "error"

    def test_guard_rearms_after_recovery(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1, trip_after=2))
        guard.record_elapsed(0.2)
        guard.record_elapsed(0.2)
        assert guard.tripped_by == "deadline"
        guard.reset_for_new_query()
        assert not guard.active and guard.strikes == 0
        guard.record_elapsed(0.05)  # recovered: a fast index round
        guard.record_elapsed(0.2)  # the full trip_after streak is required
        assert not guard.active
        guard.record_elapsed(0.2)
        assert guard.active and guard.tripped_by == "deadline"

    def test_every_miss_is_reported_even_while_tripped(self):
        guard = SessionGuard(DegradationPolicy(soft_deadline_s=0.1))
        assert guard.record_elapsed(0.2) is True
        assert guard.record_elapsed(0.2) is True  # one metric per miss


class TestPoisonedShard:
    """Sharded exact scan under a permanently failing shard."""

    POISON = FaultPlan(
        specs=(
            # key = the shard's global row offset; every=1 outlasts the
            # per-shard retry budget, so the shard is dropped for good.
            FaultSpec(site="shard.scan", kind="error", every=1, key="30"),
        )
    )

    def test_scan_is_deterministic_and_explicitly_degraded(self, database):
        service = RetrievalService(
            database, k=15, use_index=False, n_shards=4, cache_size=0
        )
        session = service.create_session(0)
        with activate_faults(self.POISON):
            first = service.query(session)
            second = service.query(session)
        assert not first.quality.is_exact
        assert "shard_failed" in first.quality.reasons
        assert first.ids.tobytes() == second.ids.tobytes()
        assert first.distances.tobytes() == second.distances.tobytes()
        counters = service.metrics_snapshot()["counters"]
        assert counters["shard_failures"] == 2
        assert counters["shard_retries"] > 0

    def test_survivors_equal_exact_topk_over_remaining_rows(self, database):
        service = RetrievalService(
            database, k=15, use_index=False, n_shards=4, cache_size=0
        )
        session = service.create_session(0)
        with activate_faults(self.POISON):
            page = service.query(session)
        with service.store.lease(session) as managed:
            distances = managed.query.distances(database.vectors)
        order = np.lexsort((np.arange(database.size), distances))
        expected = [i for i in order if not 30 <= i < 60][:15]
        np.testing.assert_array_equal(page.ids, expected)

    def test_full_coverage_restored_after_the_fault_clears(self, database):
        service = RetrievalService(
            database, k=15, use_index=False, n_shards=4, cache_size=0
        )
        session = service.create_session(0)
        with activate_faults(self.POISON):
            service.query(session)
        page = service.query(session)  # plan disarmed: coverage is back
        assert page.quality.is_exact
        reference = RetrievalService(database, k=15, use_index=False, n_shards=1)
        twin = reference.query(reference.create_session(0))
        np.testing.assert_array_equal(page.ids, twin.ids)


class TestServiceDegradation:
    def test_index_error_falls_back_to_exact_scan(self, database):
        service = RetrievalService(database, k=12, cache_size=0)
        reference = RetrievalService(database, k=12, use_index=False, cache_size=0)
        session = service.create_session(0)
        ref_session = reference.create_session(0)

        class Exploding:
            def search(self, query, k):
                raise RuntimeError("index corrupted")

        with service.store.lease(session) as managed:
            managed.searcher = Exploding()
        page = service.query(session)
        expected = reference.query(ref_session)
        np.testing.assert_array_equal(page.ids, expected.ids)
        np.testing.assert_array_equal(page.distances, expected.distances)
        counters = service.metrics_snapshot()["counters"]
        assert counters["degraded_error"] == 1
        assert counters["fallback_scans"] == 1

    def test_error_trip_pins_session_to_fallback(self, database):
        service = RetrievalService(database, k=12, cache_size=0)
        session = service.create_session(0)

        class Exploding:
            def search(self, query, k):
                raise RuntimeError("index corrupted")

        with service.store.lease(session) as managed:
            managed.searcher = Exploding()
        service.query(session)
        service.query(session)  # guard active: the index is not retried
        counters = service.metrics_snapshot()["counters"]
        assert counters["degraded_error"] == 1
        assert counters["fallback_scans"] == 2

    def test_deadline_miss_degrades_and_is_recorded(self, database):
        service = RetrievalService(database, k=12, cache_size=0, soft_deadline_s=1e-12)
        session = service.create_session(0)
        first = service.query(session)  # index path, misses the deadline
        second = service.query(session)  # degraded: exact fallback scan
        np.testing.assert_array_equal(first.ids, second.ids)
        counters = service.metrics_snapshot()["counters"]
        assert counters["degraded_deadline"] == 1
        assert counters["fallback_scans"] == 1

    def test_feedback_gives_index_another_chance_after_deadline(self, database):
        service = RetrievalService(database, k=12, cache_size=0, soft_deadline_s=1e-12)
        session = service.create_session(0)
        service.query(session)
        relevant = database.members_of(database.category_of(0))[:5]
        service.feedback(session, relevant)
        # Feedback reset the deadline trip, so the index ran again (and
        # missed again): two deadline degradations total.
        assert service.metrics.counter("degraded_deadline") == 2

    def test_generous_deadline_never_degrades(self, database):
        service = RetrievalService(database, k=12, soft_deadline_s=60.0)
        session = service.create_session(0)
        service.query(session)
        snapshot = service.metrics_snapshot()
        assert snapshot["degradations"] == 0
        assert snapshot["counters"].get("fallback_scans", 0) == 0
