"""Property tests: batched scans are byte-identical to serial scans.

The satellite contract of the batching subsystem — *how* queries are
coalesced must never leak into *what* they return.  These tests draw
randomly interleaved and randomly coalesced arrival orders over query
mixes spanning both covariance schemes (diagonal and full-inverse
Cholesky kernels), PCA-prefix coarse bases from a feature store, and
tie-heavy data (duplicated rows, so the shared ``(distance, id)``
tie-break is load-bearing) and assert every page matches the query's
solo serial scan byte-for-byte.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import QclusterConfig
from repro.parallel import scan_shard_topk, shard_coarse_level0
from repro.retrieval import FeatureDatabase, QclusterMethod, SimulatedUser
from repro.service import BatchingConfig, RetrievalService
from repro.store import FeatureStore, build_store

N = 640
P = 12
N_CATEGORIES = 8
K = 10
ROUNDS = 3


def make_database(seed: int = 11) -> FeatureDatabase:
    """Tie-heavy collection: the second quarter duplicates the first."""
    rng = np.random.default_rng(seed)
    scales = (1.0 / (1.0 + np.arange(P))) ** 0.8
    vectors = 2.0 * rng.standard_normal((N, P)) * scales
    quarter = N // 4
    vectors[quarter : 2 * quarter] = vectors[:quarter]
    labels = np.arange(N) % N_CATEGORIES
    return FeatureDatabase(vectors, labels)


def harvest_queries(database: FeatureDatabase, seed: int) -> list:
    """A deterministic mixed-scheme query pool from feedback replays.

    Round-0 single-point queries compile to diagonal kernels and the
    adaptive feedback queries to Cholesky kernels, so the pool spans
    both compatibility-key shapes.
    """
    rng = np.random.default_rng(seed)
    queries = []
    for scheme in ("diagonal", "inverse"):
        for query_id in rng.integers(0, database.size, size=3):
            method = QclusterMethod(QclusterConfig(scheme=scheme))
            user = SimulatedUser(database, database.category_of(int(query_id)))
            query = method.start(database.vectors[int(query_id)])
            for _ in range(ROUNDS):
                queries.append(query)
                ranked = scan_shard_topk(query, database.vectors, 0, K)[0]
                judgment = user.judge(ranked)
                if judgment.count == 0:
                    break
                query = method.feedback(
                    database.vectors[judgment.relevant_indices], judgment.scores
                )
    return queries


def random_chunks(rng: np.random.Generator, count: int) -> list:
    """A random permutation of ``range(count)`` cut at random points."""
    order = rng.permutation(count)
    cuts = np.sort(rng.choice(count - 1, size=min(5, count - 1), replace=False) + 1)
    return [list(piece) for piece in np.split(order, cuts) if len(piece)]


@pytest.fixture(scope="module")
def tie_database():
    return make_database()


@pytest.fixture(scope="module")
def query_pool(tie_database):
    return harvest_queries(tie_database, seed=29)


class TestRandomCoalescings:
    """scan_batch over random partitions == solo scans, byte-for-byte."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_in_memory_pages_match_serial(self, tie_database, query_pool, seed):
        solo = [
            scan_shard_topk(query, tie_database.vectors, 0, K)[:2]
            for query in query_pool
        ]
        rng = np.random.default_rng(seed)
        with RetrievalService(
            tie_database, k=K, use_index=False, n_shards=1, cache_size=0
        ) as service:
            for chunk in random_chunks(rng, len(query_pool)):
                batched = service.scan_batch(
                    [query_pool[i] for i in chunk], [K] * len(chunk)
                )
                for position, (ids, distances, _reasons) in zip(chunk, batched):
                    solo_ids, solo_distances = solo[position]
                    assert ids.tobytes() == solo_ids.tobytes()
                    assert distances.tobytes() == solo_distances.tobytes()

    @pytest.mark.parametrize("seed", [3, 4])
    def test_store_coarse_pages_match_serial(
        self, tie_database, query_pool, seed, tmp_path_factory
    ):
        """Same property against a feature store whose PCA-prefix
        ``coarse`` companion blocks feed the batched level-0 filter."""
        store_path = build_store(
            tie_database,
            tmp_path_factory.mktemp("det") / "det.qcs",
            n_shards=1,
            coarse_dims=6,
        )
        store = FeatureStore.open(store_path)
        coarse = shard_coarse_level0(store, 0)
        solo = [
            scan_shard_topk(query, store.shard(0), 0, K, coarse=coarse)[:2]
            for query in query_pool
        ]
        rng = np.random.default_rng(seed)
        with RetrievalService(
            store, k=K, use_index=False, cache_size=0
        ) as service:
            for chunk in random_chunks(rng, len(query_pool)):
                batched = service.scan_batch(
                    [query_pool[i] for i in chunk], [K] * len(chunk)
                )
                for position, (ids, distances, _reasons) in zip(chunk, batched):
                    solo_ids, solo_distances = solo[position]
                    assert ids.tobytes() == solo_ids.tobytes()
                    assert distances.tobytes() == solo_distances.tobytes()


class TestRandomInterleavings:
    """Concurrent sessions through the *real* executor == serial replay."""

    @pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
    def test_concurrent_sessions_match_serial(self, tie_database, scheme):
        def run_sessions(service, query_ids, *, gate=None):
            pages = {}

            def session(index, query_id):
                if gate is not None:
                    gate.wait()
                user = SimulatedUser(
                    tie_database, tie_database.category_of(query_id)
                )
                session_id = service.create_session(
                    query_id, session_id=f"det-{index}"
                )
                page = service.query(session_id)
                pages[(index, 0)] = (page.ids.tobytes(), page.distances.tobytes())
                for round_index in range(1, ROUNDS + 1):
                    judgment = user.judge(page.ids)
                    page = service.feedback(
                        session_id, judgment.relevant_indices, judgment.scores
                    )
                    pages[(index, round_index)] = (
                        page.ids.tobytes(),
                        page.distances.tobytes(),
                    )
                service.close(session_id)

            if gate is None:
                for index, query_id in enumerate(query_ids):
                    session(index, query_id)
            else:
                threads = [
                    threading.Thread(target=session, args=(index, query_id))
                    for index, query_id in enumerate(query_ids)
                ]
                for thread in threads:
                    thread.start()
                gate.wait()
                for thread in threads:
                    thread.join()
            return pages

        query_ids = [3, 7, 160, 161, 320, 481, 5, 162]  # includes tied twins
        kwargs = dict(
            k=K,
            use_index=False,
            n_shards=1,
            cache_size=0,
            method_factory=lambda: QclusterMethod(QclusterConfig(scheme=scheme)),
        )
        with RetrievalService(tie_database, **kwargs) as service:
            serial = run_sessions(service, query_ids)
        with RetrievalService(
            tie_database,
            batching=BatchingConfig(max_batch=8, max_wait_s=0.01),
            **kwargs,
        ) as service:
            gate = threading.Barrier(len(query_ids) + 1)
            batched = run_sessions(service, query_ids, gate=gate)
            stats = service.batching.stats()
        assert batched == serial
        assert stats["batched_queries"] == len(query_ids) * (ROUNDS + 1)
