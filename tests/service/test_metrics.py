"""ServiceMetrics: counters, percentiles, snapshots, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.service import LatencyStage, ServiceMetrics, percentile


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_p95_is_an_observed_value(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 95.0) == 95.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_single_value_all_q(self):
        for q in (0.0, 0.5, 50.0, 99.9, 100.0):
            assert percentile([7.0], q) == 7.0

    def test_fractional_q_does_not_truncate_rank(self):
        # Regression: ceil used to be applied to int(n*q), so the
        # fractional part of the product was lost before rounding up.
        # n=601, q=0.5 -> n*q/100 = 3.005 -> nearest rank 4, but the
        # truncated form computed ceil(int(300.5)/100) = 3.
        values = [float(i) for i in range(1, 602)]
        assert percentile(values, 0.5) == 4.0

    def test_fractional_q_small_sequence(self):
        values = [1.0, 2.0, 3.0, 4.0]
        # n*q/100 = 0.1 -> rank max(1, ceil(0.1)) = 1.
        assert percentile(values, 2.5) == 1.0
        # n*q/100 = 2.04 -> rank 3.
        assert percentile(values, 51.0) == 3.0

    def test_q_zero_returns_minimum(self):
        assert percentile([9.0, 4.0, 6.0], 0.0) == 4.0

    def test_q_hundred_returns_maximum(self):
        assert percentile([9.0, 4.0, 6.0], 100.0) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestLatencyStage:
    def test_summary_tracks_all_observations(self):
        stage = LatencyStage()
        for value in (0.1, 0.2, 0.3):
            stage.observe(value)
        summary = stage.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.2)
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)

    def test_reservoir_ages_out_but_count_does_not(self):
        stage = LatencyStage(reservoir_size=2)
        for value in (1.0, 2.0, 3.0):
            stage.observe(value)
        summary = stage.summary()
        assert summary["count"] == 3
        # Percentiles see only the two most recent observations.
        assert summary["p50"] == pytest.approx(2.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStage().observe(-0.1)


class TestServiceMetrics:
    def test_counters_default_to_zero(self):
        assert ServiceMetrics().counter("nonexistent") == 0

    def test_increment_with_amount(self):
        metrics = ServiceMetrics()
        metrics.increment("node_accesses", 17)
        metrics.increment("node_accesses", 3)
        assert metrics.counter("node_accesses") == 20

    def test_timer_context_observes_stage(self):
        # First tick is consumed by the constructor's uptime clock.
        ticks = iter([0.0, 1.0, 2.5])
        metrics = ServiceMetrics(clock=lambda: next(ticks))
        with metrics.time("query"):
            pass
        summary = metrics._stages["query"].summary()
        assert summary["p50"] == pytest.approx(1.5)

    def test_cache_hit_rate(self):
        metrics = ServiceMetrics()
        assert metrics.cache_hit_rate == 0.0
        metrics.increment("cache_hits", 3)
        metrics.increment("cache_misses", 1)
        assert metrics.cache_hit_rate == pytest.approx(0.75)

    def test_snapshot_is_plain_and_isolated(self):
        metrics = ServiceMetrics()
        metrics.increment("queries")
        snapshot = metrics.snapshot()
        snapshot["counters"]["queries"] = 99
        assert metrics.counter("queries") == 1
        assert set(snapshot) == {
            "counters",
            "latency",
            "uptime_seconds",
            "cache_hit_rate",
            "kernel_cache_hit_rate",
            "refine_fraction",
            "candidates_pruned",
            "degradations",
            "result_quality",
        }

    def test_uptime_tracks_clock(self):
        ticks = iter([10.0, 17.5])
        metrics = ServiceMetrics(clock=lambda: next(ticks))
        assert metrics.uptime_seconds == pytest.approx(7.5)

    def test_reset_clears_state_and_restarts_uptime(self):
        ticks = iter([0.0, 1.0, 3.0, 50.0, 51.0])
        metrics = ServiceMetrics(clock=lambda: next(ticks))
        metrics.increment("queries", 5)
        with metrics.time("query"):  # consumes ticks 1.0 and 3.0
            pass
        metrics.reset()  # restarts uptime at tick 50.0
        assert metrics.counter("queries") == 0
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["latency"] == {}
        assert snapshot["uptime_seconds"] == pytest.approx(1.0)

    def test_degradations_aggregates_both_kinds(self):
        metrics = ServiceMetrics()
        metrics.increment("degraded_error", 2)
        metrics.increment("degraded_deadline", 3)
        assert metrics.snapshot()["degradations"] == 5

    def test_concurrent_increments_do_not_lose_updates(self):
        metrics = ServiceMetrics()

        def bump():
            for _ in range(1000):
                metrics.increment("hits")
                metrics.observe("stage", 0.001)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("hits") == 8000
        assert metrics.snapshot()["latency"]["stage"]["count"] == 8000

    def test_snapshot_races_mutators_without_error(self):
        """Racing observe/increment/snapshot threads never raise, and
        counters sum exactly once the mutators finish."""
        metrics = ServiceMetrics(reservoir_size=64)
        stop = threading.Event()
        errors = []

        def mutate(counter):
            try:
                for i in range(2000):
                    metrics.increment(counter)
                    metrics.increment("shared", 2)
                    metrics.observe("stage", 0.001 * (i % 7 + 1))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def scrape():
            try:
                while not stop.is_set():
                    snapshot = metrics.snapshot()
                    assert isinstance(snapshot["counters"], dict)
                    assert snapshot["uptime_seconds"] >= 0.0
                    latency = snapshot["latency"].get("stage")
                    if latency is not None:
                        assert latency["p50"] > 0.0
                        assert latency["count"] >= 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        mutators = [
            threading.Thread(target=mutate, args=(f"c{i}",)) for i in range(4)
        ]
        scrapers = [threading.Thread(target=scrape) for _ in range(2)]
        for thread in mutators + scrapers:
            thread.start()
        for thread in mutators:
            thread.join()
        stop.set()
        for thread in scrapers:
            thread.join()
        assert errors == []
        assert metrics.counter("shared") == 4 * 2000 * 2
        for i in range(4):
            assert metrics.counter(f"c{i}") == 2000
        assert metrics.snapshot()["latency"]["stage"]["count"] == 4 * 2000
