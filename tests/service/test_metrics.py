"""ServiceMetrics: counters, percentiles, snapshots, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.service import LatencyStage, ServiceMetrics, percentile


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_p95_is_an_observed_value(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 95.0) == 95.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestLatencyStage:
    def test_summary_tracks_all_observations(self):
        stage = LatencyStage()
        for value in (0.1, 0.2, 0.3):
            stage.observe(value)
        summary = stage.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(0.2)
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)

    def test_reservoir_ages_out_but_count_does_not(self):
        stage = LatencyStage(reservoir_size=2)
        for value in (1.0, 2.0, 3.0):
            stage.observe(value)
        summary = stage.summary()
        assert summary["count"] == 3
        # Percentiles see only the two most recent observations.
        assert summary["p50"] == pytest.approx(2.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStage().observe(-0.1)


class TestServiceMetrics:
    def test_counters_default_to_zero(self):
        assert ServiceMetrics().counter("nonexistent") == 0

    def test_increment_with_amount(self):
        metrics = ServiceMetrics()
        metrics.increment("node_accesses", 17)
        metrics.increment("node_accesses", 3)
        assert metrics.counter("node_accesses") == 20

    def test_timer_context_observes_stage(self):
        ticks = iter([0.0, 1.5])
        metrics = ServiceMetrics(clock=lambda: next(ticks))
        with metrics.time("query"):
            pass
        assert metrics.snapshot()["latency"]["query"]["p50"] == pytest.approx(1.5)

    def test_cache_hit_rate(self):
        metrics = ServiceMetrics()
        assert metrics.cache_hit_rate == 0.0
        metrics.increment("cache_hits", 3)
        metrics.increment("cache_misses", 1)
        assert metrics.cache_hit_rate == pytest.approx(0.75)

    def test_snapshot_is_plain_and_isolated(self):
        metrics = ServiceMetrics()
        metrics.increment("queries")
        snapshot = metrics.snapshot()
        snapshot["counters"]["queries"] = 99
        assert metrics.counter("queries") == 1
        assert set(snapshot) == {
            "counters",
            "latency",
            "cache_hit_rate",
            "kernel_cache_hit_rate",
            "refine_fraction",
            "candidates_pruned",
            "degradations",
        }

    def test_degradations_aggregates_both_kinds(self):
        metrics = ServiceMetrics()
        metrics.increment("degraded_error", 2)
        metrics.increment("degraded_deadline", 3)
        assert metrics.snapshot()["degradations"] == 5

    def test_concurrent_increments_do_not_lose_updates(self):
        metrics = ServiceMetrics()

        def bump():
            for _ in range(1000):
                metrics.increment("hits")
                metrics.observe("stage", 0.001)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("hits") == 8000
        assert metrics.snapshot()["latency"]["stage"]["count"] == 8000
