"""RetrievalService over a feature store: wiring, salting, degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.core.kernels import KernelCache, ensure_compiled
from repro.faults import FaultPlan, FaultSpec, activate_faults
from repro.service import RetrievalService
from repro.service.cache import fingerprint_query
from repro.store import FeatureStore, build_store


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, database):
    path = tmp_path_factory.mktemp("store") / "svc.qcs"
    return build_store(database, path, n_shards=4)


def make_query(dim=3):
    return DisjunctiveQuery(
        [QueryPoint(center=np.zeros(dim), inverse=np.eye(dim), weight=1.0)]
    )


class TestConstruction:
    def test_processes_backend_requires_a_store(self, database):
        with pytest.raises(ValueError, match="store"):
            RetrievalService(database, scan_backend="processes")

    def test_unknown_backend_rejected(self, database):
        with pytest.raises(ValueError, match="scan_backend"):
            RetrievalService(database, scan_backend="carrier-pigeon")

    def test_n_shards_must_match_the_store_partition(self, store_path):
        store = FeatureStore.open(store_path)
        with pytest.raises(ValueError, match="re-shard"):
            RetrievalService(store, n_shards=8)

    def test_store_fixes_geometry(self, store_path):
        store = FeatureStore.open(store_path)
        with RetrievalService(store, k=5, use_index=False) as service:
            assert service.size == store.n
            assert service.n_shards == store.n_shards

    def test_store_backend_serves_sessions(self, store_path, database):
        store = FeatureStore.open(store_path)
        with RetrievalService(store, k=10, use_index=False) as service:
            session = service.create_session(0)
            page = service.query(session)
            assert page.ids[0] == 0
            relevant = database.members_of(database.category_of(0))[:5]
            refined = service.feedback(session, relevant)
            assert refined.iteration == 1
            assert refined.quality.level == "exact"


class TestMetricsSnapshot:
    def test_feature_store_section(self, store_path):
        store = FeatureStore.open(store_path)
        with RetrievalService(store, k=5, use_index=False) as service:
            session = service.create_session(store.as_array()[3])
            service.query(session)
            snapshot = service.metrics_snapshot()
        feature = snapshot["feature_store"]
        assert feature["fingerprint"] == store.fingerprint
        assert feature["block_reads"] > 0
        assert feature["n_shards"] == 4
        assert "worker_pool" not in snapshot  # threads backend: no pool

    def test_worker_pool_section(self, store_path):
        store = FeatureStore.open(store_path)
        with RetrievalService(
            store, k=5, use_index=False, scan_backend="processes", max_workers=1
        ) as service:
            session = service.create_session(store.as_array()[3])
            service.query(session)
            snapshot = service.metrics_snapshot()
        pool = snapshot["worker_pool"]
        assert pool["workers"] == 1
        assert pool["tasks_completed"] >= 4  # one task per shard
        assert pool["tasks_failed"] == 0
        assert snapshot["counters"]["store_block_reads_workers"] >= 4


class TestCacheSalting:
    def test_result_keys_differ_across_scopes(self):
        query = make_query()
        unsalted = fingerprint_query(query, 10)
        assert fingerprint_query(query, 10) == unsalted  # deterministic
        salted_a = fingerprint_query(query, 10, scope="hash:0")
        salted_b = fingerprint_query(query, 10, scope="hash:1")
        assert len({unsalted, salted_a, salted_b}) == 3

    def test_kernel_cache_keys_differ_across_scopes(self):
        cache = KernelCache()
        events = []
        ensure_compiled(make_query(), cache=cache, on_event=events.append, scope="e0")
        # Same cluster state, same scope, fresh instance: a cache hit.
        ensure_compiled(make_query(), cache=cache, on_event=events.append, scope="e0")
        # Same cluster state, new epoch: the salted key cannot alias.
        ensure_compiled(make_query(), cache=cache, on_event=events.append, scope="e1")
        assert events == ["misses", "hits", "misses"]

    def test_epoch_bump_moves_the_service_scope(self, tmp_path, database):
        path = tmp_path / "epoch.qcs"
        build_store(database, path, n_shards=2)
        first = FeatureStore.open(path).fingerprint
        build_store(database, path, n_shards=2)  # identical bytes, epoch+1
        second = FeatureStore.open(path).fingerprint
        query = make_query()
        assert fingerprint_query(query, 10, scope=first) != fingerprint_query(
            query, 10, scope=second
        )


class TestCorruptBlockDegradation:
    def plan(self, at=(1,)):
        return FaultPlan(
            specs=(FaultSpec("store.block_read", "corrupt", key="shard/0001", at=at),)
        )

    def test_corrupt_block_degrades_instead_of_crashing(self, store_path, database):
        store = FeatureStore.open(store_path)
        probe = np.asarray(database.vectors[0], dtype=float)
        with RetrievalService(store, k=10, use_index=False) as service:
            session = service.create_session(probe)
            with activate_faults(self.plan()):
                page = service.query(session)
        assert page.quality.level == "degraded"
        assert "store_block_corrupt" in page.quality.reasons
        # Coverage shrank to the three clean shards — ids from the
        # quarantined shard's row range are absent, everything else is
        # still ranked exactly.
        lo, hi = store.row_offsets[1], store.row_offsets[2]
        assert not any(lo <= i < hi for i in page.ids)

    def test_degradation_is_sticky_but_never_fatal(self, store_path, database):
        store = FeatureStore.open(store_path)
        probe = np.asarray(database.vectors[0], dtype=float)
        with RetrievalService(store, k=10, use_index=False) as service:
            session = service.create_session(probe)
            with activate_faults(self.plan()):
                first = service.query(session)
            # The plan is long gone, but the quarantine is on the store.
            second = service.query(session, k=12)
            assert first.quality.level == "degraded"
            assert second.quality.level == "degraded"
            assert "store_block_corrupt" in second.quality.reasons
            other = service.create_session(np.asarray(database.vectors[70], dtype=float))
            assert service.query(other).quality.level == "degraded"

    def test_other_shards_unaffected_before_the_fault_fires(self, store_path, database):
        store = FeatureStore.open(store_path)
        probe = np.asarray(database.vectors[0], dtype=float)
        with RetrievalService(store, k=10, use_index=False) as service:
            session = service.create_session(probe)
            baseline = service.query(session)
            assert baseline.quality.level == "exact"
