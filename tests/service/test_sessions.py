"""SessionStore: leasing, eviction, checkpoints, TTL, restarts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import QueryPointMovement
from repro.retrieval import QclusterMethod
from repro.service import ManagedSession, ServiceMetrics, SessionNotFound, SessionStore


class FakeClock:
    """Deterministic monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_session(session_id: str, rounds: int = 1, seed: int = 0) -> ManagedSession:
    """A Qcluster-backed session with some real cluster state."""
    rng = np.random.default_rng(seed)
    method = QclusterMethod()
    query = method.start(rng.standard_normal(3))
    for _ in range(rounds):
        query = method.feedback(rng.standard_normal((8, 3)))
    return ManagedSession(session_id=session_id, method=method, query=query,
                          iteration=rounds)


class TestBasics:
    def test_put_and_lease(self):
        store = SessionStore(capacity=4)
        store.put(make_session("a"))
        with store.lease("a") as session:
            assert session.session_id == "a"
        assert len(store) == 1
        assert "a" in store

    def test_unknown_id_raises(self):
        store = SessionStore(capacity=4)
        with pytest.raises(SessionNotFound):
            with store.lease("missing"):
                pass

    def test_remove_is_terminal(self):
        store = SessionStore(capacity=4)
        store.put(make_session("a"))
        assert store.remove("a") is True
        assert store.remove("a") is False
        with pytest.raises(SessionNotFound):
            with store.lease("a"):
                pass

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SessionStore(capacity=0)
        with pytest.raises(ValueError):
            SessionStore(ttl_seconds=0.0)


class TestCapacityEviction:
    def test_lru_session_is_evicted_first(self):
        clock = FakeClock()
        store = SessionStore(capacity=2, clock=clock)
        for session_id in ("a", "b"):
            store.put(make_session(session_id))
            clock.advance(1.0)
        with store.lease("a"):
            pass  # refresh a; b is now least recently used
        clock.advance(1.0)
        store.put(make_session("c"))
        assert set(store.live_ids) == {"a", "c"}
        assert store.archived_ids == ["b"]

    def test_evicted_session_restores_transparently(self):
        metrics = ServiceMetrics()
        store = SessionStore(capacity=1, metrics=metrics)
        original = make_session("a", rounds=2)
        engine_before = original.method.engine
        store.put(original)
        store.put(make_session("b"))  # evicts a
        with store.lease("a") as restored:  # evicts b, restores a
            assert restored is not original
            engine_after = restored.method.engine
            assert engine_after.n_clusters == engine_before.n_clusters
            for before, after in zip(engine_before.clusters, engine_after.clusters):
                np.testing.assert_array_equal(before.centroid, after.centroid)
                np.testing.assert_array_equal(before.covariance, after.covariance)
                assert before.weight == after.weight
            assert restored.iteration == original.iteration
        assert metrics.counter("sessions_evicted") == 2
        assert metrics.counter("sessions_restored") == 1

    def test_pinned_sessions_are_never_evicted(self):
        store = SessionStore(capacity=1)
        store.put(make_session("a"))
        with store.lease("a"):
            # a is pinned, so the overflow falls on the only unpinned
            # session — the just-inserted b — never on a.
            store.put(make_session("b"))
            assert store.live_ids == ["a"]
            assert store.archived_ids == ["b"]

    def test_unpersistable_session_is_lost_with_metric(self):
        metrics = ServiceMetrics()
        store = SessionStore(capacity=1, metrics=metrics)
        method = QueryPointMovement()
        query = method.start(np.zeros(3))
        store.put(ManagedSession(session_id="qpm", method=method, query=query))
        store.put(make_session("b"))
        assert metrics.counter("sessions_lost") == 1
        with pytest.raises(SessionNotFound):
            with store.lease("qpm"):
                pass


class TestTTL:
    def test_idle_sessions_expire(self):
        clock = FakeClock()
        store = SessionStore(capacity=8, ttl_seconds=10.0, clock=clock)
        store.put(make_session("a"))
        clock.advance(11.0)
        assert store.sweep() == 1
        assert store.live_ids == []
        assert store.archived_ids == ["a"]

    def test_active_sessions_survive_the_sweep(self):
        clock = FakeClock()
        store = SessionStore(capacity=8, ttl_seconds=10.0, clock=clock)
        store.put(make_session("a"))
        clock.advance(9.0)
        with store.lease("a"):
            pass  # touch
        clock.advance(9.0)
        assert store.sweep() == 0

    def test_expired_session_restores_on_next_lease(self):
        clock = FakeClock()
        store = SessionStore(capacity=8, ttl_seconds=10.0, clock=clock)
        store.put(make_session("a", rounds=1))
        clock.advance(11.0)
        with store.lease("a") as session:
            assert session.method.engine.n_clusters >= 1


class TestDiskCheckpoints:
    def test_checkpoint_survives_process_restart(self, tmp_path):
        first = SessionStore(capacity=1, checkpoint_dir=tmp_path)
        original = make_session("a", rounds=2)
        reference = original.method.engine
        first.put(original)
        first.put(make_session("b"))  # writes a's checkpoint file
        assert (tmp_path / "a.json").exists()

        second = SessionStore(capacity=4, checkpoint_dir=tmp_path)  # "new process"
        assert "a" in second
        with second.lease("a") as restored:
            engine = restored.method.engine
            assert engine.n_clusters == reference.n_clusters
            for before, after in zip(reference.clusters, engine.clusters):
                np.testing.assert_array_equal(before.centroid, after.centroid)
                np.testing.assert_array_equal(before.covariance, after.covariance)
                assert before.weight == after.weight
        assert not (tmp_path / "a.json").exists()  # consumed on restore

    def test_remove_deletes_the_checkpoint_file(self, tmp_path):
        store = SessionStore(capacity=1, checkpoint_dir=tmp_path)
        store.put(make_session("a"))
        store.put(make_session("b"))
        assert (tmp_path / "a.json").exists()
        assert store.remove("a") is True
        assert not (tmp_path / "a.json").exists()
