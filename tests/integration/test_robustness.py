"""Robustness integration tests: long sessions, odd inputs, stability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QclusterConfig
from repro.core.qcluster import QclusterEngine
from repro.retrieval import FeatureDatabase, FeedbackSession, QclusterMethod
from repro.retrieval.user import SimulatedUser


class TestLongSessions:
    def test_twenty_iterations_stay_bounded(self, rng):
        """Cluster count and mass stay sane over a long session."""
        database = np.vstack(
            [rng.normal(offset, 0.6, (80, 3)) for offset in (0.0, 6.0, -6.0)]
        )
        engine = QclusterEngine(QclusterConfig(max_clusters=5))
        query = engine.start(database[0])
        for _ in range(20):
            ranking = np.argsort(query.distances(database))[:40]
            relevant = database[[i for i in ranking if i < 80][:15]]
            query = engine.feedback(relevant)
            assert 1 <= engine.n_clusters <= 5
            assert np.isfinite(engine.total_relevance_mass)
        # Dedup means the mass is bounded by the target population.
        assert engine.total_relevance_mass <= 80.0

    def test_recall_never_collapses(self, color_database):
        """Quality may plateau but must not fall off a cliff."""
        session = FeedbackSession(color_database, QclusterMethod(), k=30)
        result = session.run(0, n_iterations=10)
        assert result.recalls[-1] >= result.recalls[0] - 0.1
        assert result.recalls.min() >= result.recalls[0] - 0.15


class TestDegenerateFeedback:
    def test_single_relevant_point_per_round(self, rng):
        engine = QclusterEngine()
        query = engine.start(np.zeros(3))
        for i in range(5):
            query = engine.feedback(rng.standard_normal((1, 3)))
        assert engine.n_clusters >= 1
        assert np.all(np.isfinite(query.distances(rng.standard_normal((10, 3)))))

    def test_alternating_modes_one_point_each(self, rng):
        """Outlier singletons from alternating modes get consolidated."""
        engine = QclusterEngine(QclusterConfig(max_clusters=3))
        engine.start(np.zeros(2))
        for i in range(12):
            center = np.zeros(2) if i % 2 == 0 else np.full(2, 20.0)
            engine.feedback(center[None, :] + rng.normal(0.0, 0.3, (1, 2)))
        assert engine.n_clusters <= 3

    def test_user_marks_nothing_relevant(self, color_database):
        """A category oracle for a category absent from the top-k."""
        user = SimulatedUser(color_database, target_category=-99)
        session = FeedbackSession(color_database, QclusterMethod(), k=10)
        result = session.run(0, n_iterations=3, user=user)
        # No judgments -> query never refines -> flat zero quality; the
        # session must complete without errors.
        assert len(result.records) == 4
        assert result.recalls.max() == 0.0

    def test_tiny_database(self, rng):
        database = FeatureDatabase(rng.standard_normal((4, 2)), [0, 0, 1, 1])
        session = FeedbackSession(database, QclusterMethod(), k=10)
        result = session.run(0, n_iterations=2)
        assert len(result.records) == 3

    def test_one_dimensional_features(self, rng):
        vectors = np.concatenate(
            [rng.normal(0.0, 0.3, 30), rng.normal(5.0, 0.3, 30)]
        )[:, None]
        database = FeatureDatabase(vectors, [0] * 30 + [1] * 30)
        session = FeedbackSession(database, QclusterMethod(), k=20)
        result = session.run(0, n_iterations=2)
        assert result.recalls[-1] > 0.5


class TestDeterminism:
    def test_identical_runs_identical_results(self, color_database):
        first = FeedbackSession(color_database, QclusterMethod(), k=25).run(
            3, n_iterations=3
        )
        second = FeedbackSession(color_database, QclusterMethod(), k=25).run(
            3, n_iterations=3
        )
        np.testing.assert_array_equal(first.recalls, second.recalls)
        for a, b in zip(first.records, second.records):
            np.testing.assert_array_equal(a.result_indices, b.result_indices)
