"""End-to-end integration: the paper's headline comparisons, in miniature.

These tests run the complete pipeline — procedural image collection →
HSV color-moment features → PCA → feedback sessions → metrics — and
assert the *shape* of the paper's findings:

* retrieval quality improves per iteration, with the biggest jump at
  iteration 1 (Figures 8-9 observation),
* Qcluster beats query expansion, which beats query-point movement
  (Figures 10-13), and
* the whole method is invariant to linear transformations of the
  feature space when the full-inverse scheme is used (Theorem 1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Falcon, QueryExpansion, QueryPointMovement
from repro.core.config import QclusterConfig
from repro.datasets import generate_collection
from repro.features import color_pipeline
from repro.retrieval import (
    FeatureDatabase,
    QclusterMethod,
    compare_methods,
    run_batch,
    sample_query_indices,
)


@pytest.fixture(scope="module")
def image_database():
    """Color-moment features of a collection with complex categories."""
    collection = generate_collection(
        n_categories=8,
        images_per_category=40,
        image_size=16,
        complex_fraction=0.5,
        seed=11,
    )
    features = color_pipeline().fit(collection.images)
    return FeatureDatabase(features, collection.labels)


@pytest.fixture(scope="module")
def comparison(image_database):
    queries = sample_query_indices(image_database, 10, np.random.default_rng(3))
    return compare_methods(
        image_database,
        {
            "qcluster": QclusterMethod,
            "qex": QueryExpansion,
            "qpm": QueryPointMovement,
            "falcon": Falcon,
        },
        queries,
        k=40,
        n_iterations=4,
    )


class TestHeadlineComparison:
    def test_identical_initial_iteration(self, comparison):
        recalls = {name: r.mean_recall[0] for name, r in comparison.items()}
        assert len(set(np.round(list(recalls.values()), 9))) == 1

    def test_qcluster_beats_qex_beats_qpm_in_recall(self, comparison):
        final = {name: r.mean_recall[-1] for name, r in comparison.items()}
        assert final["qcluster"] > final["qex"]
        assert final["qex"] >= final["qpm"]

    def test_qcluster_beats_qex_beats_qpm_in_precision(self, comparison):
        final = {name: r.mean_precision[-1] for name, r in comparison.items()}
        assert final["qcluster"] > final["qex"]
        assert final["qex"] >= final["qpm"]

    def test_improvement_margins(self, comparison):
        """The paper reports ~+22% recall vs QEX and ~+34% vs QPM on its
        30,000-image collection; on this miniature we assert the same
        direction with a nontrivial margin."""
        final = {name: r.mean_recall[-1] for name, r in comparison.items()}
        assert final["qcluster"] / final["qex"] > 1.03
        assert final["qcluster"] / final["qpm"] > 1.05

    def test_quality_improves_over_iterations(self, comparison):
        recalls = comparison["qcluster"].mean_recall
        assert recalls[-1] > recalls[0]
        # Biggest jump at the first feedback iteration (paper observation).
        jumps = np.diff(recalls)
        assert jumps[0] == max(jumps)

    def test_falcon_also_handles_disjunctive_queries(self, comparison):
        """FALCON's fuzzy-OR over all relevant points is quality-
        competitive (its weakness is execution cost, Figure 7)."""
        final = {name: r.mean_recall[-1] for name, r in comparison.items()}
        assert final["falcon"] > final["qpm"]


class TestSchemes:
    def test_diagonal_and_inverse_schemes_similar_quality(self, image_database):
        queries = [0, 45, 90, 200]
        diagonal = run_batch(
            image_database,
            lambda: QclusterMethod(QclusterConfig(scheme="diagonal")),
            queries,
            k=40,
            n_iterations=3,
        )
        inverse = run_batch(
            image_database,
            lambda: QclusterMethod(QclusterConfig(scheme="inverse")),
            queries,
            k=40,
            n_iterations=3,
        )
        assert abs(diagonal.mean_recall[-1] - inverse.mean_recall[-1]) < 0.12


class TestLinearInvariance:
    def test_full_pipeline_invariance(self, image_database):
        """Theorem 1 end-to-end: map the whole feature space through an
        invertible linear transform; with the inverse scheme, per-query
        recall trajectories must match."""
        rng = np.random.default_rng(5)
        dim = image_database.dimension
        transform = rng.standard_normal((dim, dim)) + 3.0 * np.eye(dim)
        mapped = FeatureDatabase(
            image_database.vectors @ transform.T, image_database.labels
        )
        config = QclusterConfig(scheme="inverse", regularization=1e-10)
        queries = [0, 60, 170]
        original = run_batch(
            image_database, lambda: QclusterMethod(config), queries, k=40, n_iterations=2
        )
        transformed = run_batch(
            mapped, lambda: QclusterMethod(config), queries, k=40, n_iterations=2
        )
        # Iteration 0 uses a Euclidean query (not invariant by design), so
        # compare feedback iterations only.
        np.testing.assert_allclose(
            original.per_query_recall[:, 1:],
            transformed.per_query_recall[:, 1:],
            atol=0.05,
        )
