"""Behavioural tests of the four baselines (QPM, QEX, FALCON, MindReader)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.falcon import Falcon
from repro.baselines.mindreader import MindReader
from repro.baselines.qex import QueryExpansion
from repro.baselines.qpm import QueryPointMovement


def bimodal_relevant(rng, separation=10.0, n=10, dim=3):
    half = n // 2
    return np.vstack(
        [
            rng.normal(0.0, 0.4, (half, dim)),
            rng.normal(0.0, 0.4, (n - half, dim)) + separation,
        ]
    )


class TestQueryPointMovement:
    def test_query_moves_toward_relevant_mean(self, rng):
        method = QueryPointMovement(query_weight=0.5, relevant_weight=0.5)
        method.start(np.zeros(3))
        relevant = rng.normal(4.0, 0.1, (20, 3))
        query = method.feedback(relevant)
        # Rocchio midpoint between origin and ~4.
        np.testing.assert_allclose(query.centers[0], np.full(3, 2.0), atol=0.2)

    def test_reweighting_respects_variance(self, rng):
        method = QueryPointMovement()
        method.start(np.zeros(2))
        relevant = np.column_stack(
            [rng.normal(0, 0.1, 40), rng.normal(0, 2.0, 40)]
        )
        query = method.feedback(relevant)
        inverse = query.inverses[0]
        # Tighter dimension gets the larger weight.
        assert inverse[0, 0] > inverse[1, 1] * 10

    def test_single_contour_fails_bimodal(self, rng):
        """QPM's single point lands between modes — the paper's failure case."""
        method = QueryPointMovement()
        method.start(np.zeros(3))
        query = method.feedback(bimodal_relevant(rng))
        # One center, roughly midway between the modes.
        assert query.size == 1
        assert 3.0 < query.centers[0][0] < 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryPointMovement(query_weight=-1.0)
        with pytest.raises(ValueError):
            QueryPointMovement(relevant_weight=0.0)


class TestQueryExpansion:
    def test_multiple_representatives(self, rng):
        method = QueryExpansion(n_representatives=3)
        method.start(np.zeros(3))
        query = method.feedback(bimodal_relevant(rng, n=12))
        assert query.size == 3
        assert query.alpha == 1.0  # one convex covering contour

    def test_representatives_cover_modes(self, rng):
        method = QueryExpansion(n_representatives=2)
        method.start(np.zeros(3))
        query = method.feedback(bimodal_relevant(rng))
        first_coordinates = sorted(query.centers[:, 0])
        assert first_coordinates[0] < 2.0
        assert first_coordinates[-1] > 8.0

    def test_convex_contour_covers_the_gap(self, rng):
        """QEX's conjunctive aggregate ranks the inter-mode gap well —
        which is exactly why it loses to Qcluster on complex queries."""
        method = QueryExpansion(n_representatives=2)
        method.start(np.zeros(3))
        query = method.feedback(bimodal_relevant(rng))
        midpoint = np.full((1, 3), 5.0)
        on_mode = np.full((1, 3), 0.0)
        # With the arithmetic mean, the midpoint is at least competitive
        # with a point on one mode (sum of distances is what matters).
        assert query.distances(midpoint)[0] < 2.0 * query.distances(on_mode)[0]

    def test_fewer_points_than_representatives(self, rng):
        method = QueryExpansion(n_representatives=5)
        method.start(np.zeros(3))
        query = method.feedback(rng.standard_normal((2, 3)))
        assert query.size == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryExpansion(n_representatives=0)


class TestFalcon:
    def test_all_relevant_points_are_query_points(self, rng):
        method = Falcon()
        method.start(np.zeros(3))
        relevant = rng.standard_normal((15, 3))
        query = method.feedback(relevant)
        assert query.size == 15
        assert query.alpha == -5.0

    def test_handles_disjunctive_shape(self, rng):
        method = Falcon()
        method.start(np.zeros(3))
        query = method.feedback(bimodal_relevant(rng))
        near_mode = np.zeros((1, 3)) + 0.2
        midpoint = np.full((1, 3), 5.0)
        assert query.distances(near_mode)[0] < query.distances(midpoint)[0]

    def test_max_query_points_cap(self, rng):
        method = Falcon(max_query_points=5)
        method.start(np.zeros(3))
        query = method.feedback(rng.standard_normal((12, 3)))
        assert query.size == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            Falcon(alpha=1.0)
        with pytest.raises(ValueError):
            Falcon(max_query_points=0)


class TestMindReader:
    def test_single_point_full_covariance(self, rng):
        method = MindReader()
        method.start(np.zeros(2))
        # Correlated relevant set: the full inverse captures orientation.
        latent = rng.standard_normal(50)
        relevant = np.column_stack([latent, latent * 0.9 + rng.normal(0, 0.1, 50)])
        query = method.feedback(relevant)
        assert query.size == 1
        inverse = query.inverses[0]
        # Full matrix: off-diagonal structure present (negative correlation
        # term in the inverse of a positively correlated covariance).
        assert inverse[0, 1] < 0

    def test_distance_is_mahalanobis(self, rng):
        method = MindReader(regularization=1e-10)
        method.start(np.zeros(2))
        relevant = rng.standard_normal((100, 2)) * np.array([1.0, 3.0])
        query = method.feedback(relevant)
        center = query.centers[0]
        covariance = np.cov(relevant, rowvar=False, bias=True)
        x = np.array([1.0, 1.0])
        expected = (x - center) @ np.linalg.inv(covariance) @ (x - center)
        assert query.distances(x[None, :])[0] == pytest.approx(float(expected), rel=0.05)
