"""Shared baseline machinery: PowerMeanQuery and accumulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import (
    AccumulatingMethod,
    PowerMeanQuery,
    diagonal_inverse_from_points,
)


class TestDiagonalInverse:
    def test_reciprocal_variances(self, rng):
        points = rng.standard_normal((50, 3)) * np.array([1.0, 2.0, 0.5])
        inverse = diagonal_inverse_from_points(points)
        variances = points.var(axis=0)
        np.testing.assert_allclose(np.diag(inverse), 1.0 / variances, rtol=1e-9)

    def test_weighted_variances(self, rng):
        points = np.array([[0.0], [1.0]])
        # Heavy weight on one point shrinks the weighted variance.
        heavy = diagonal_inverse_from_points(points, scores=[9.0, 1.0])
        even = diagonal_inverse_from_points(points, scores=[1.0, 1.0])
        assert heavy[0, 0] > even[0, 0]

    def test_regularization_floor(self):
        inverse = diagonal_inverse_from_points(np.ones((5, 2)), regularization=1e-4)
        np.testing.assert_allclose(np.diag(inverse), 1e4)


class TestPowerMeanQuery:
    def test_single_point_is_quadratic(self, rng):
        center = rng.standard_normal(3)
        query = PowerMeanQuery(
            centers=center[None, :], inverses=(np.eye(3),), weights=np.ones(1), alpha=1.0
        )
        x = rng.standard_normal((4, 3))
        expected = np.sum((x - center) ** 2, axis=1)
        np.testing.assert_allclose(query.distances(x), expected)

    def test_alpha_one_weighted_average(self):
        query = PowerMeanQuery(
            centers=np.array([[0.0], [4.0]]),
            inverses=(np.eye(1), np.eye(1)),
            weights=np.array([1.0, 3.0]),
            alpha=1.0,
        )
        # At x = 0: distances (0, 16); weighted mean = (0*1 + 16*3)/4 = 12.
        assert query.distances(np.array([[0.0]]))[0] == pytest.approx(12.0)

    def test_negative_alpha_is_disjunctive(self):
        query = PowerMeanQuery(
            centers=np.array([[0.0], [100.0]]),
            inverses=(np.eye(1), np.eye(1)),
            weights=np.ones(2),
            alpha=-5.0,
        )
        near_either = query.distances(np.array([[0.5], [99.5]]))
        midpoint = query.distances(np.array([[50.0]]))
        assert near_either.max() < midpoint[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerMeanQuery(np.empty((0, 2)), (), np.empty(0), 1.0)
        with pytest.raises(ValueError):
            PowerMeanQuery(np.zeros((1, 2)), (np.eye(2),), np.ones(2), 1.0)
        with pytest.raises(ValueError):
            PowerMeanQuery(np.zeros((1, 2)), (np.eye(2),), np.ones(1), 0.0)
        with pytest.raises(ValueError):
            PowerMeanQuery(np.zeros((1, 2)), (np.eye(2),), np.zeros(1), 1.0)


class RecordingMethod(AccumulatingMethod):
    """Test double exposing the pooled relevant set."""

    name = "recording"

    def build_query(self, points, scores):
        self.last_points = points
        self.last_scores = scores
        return PowerMeanQuery(
            centers=points.mean(axis=0)[None, :],
            inverses=(np.eye(points.shape[1]),),
            weights=np.ones(1),
            alpha=1.0,
        )


class TestAccumulatingMethod:
    def test_accumulates_across_rounds(self, rng):
        method = RecordingMethod()
        method.start(np.zeros(3))
        method.feedback(rng.standard_normal((4, 3)))
        method.feedback(rng.standard_normal((3, 3)))
        assert method.last_points.shape == (7, 3)

    def test_deduplicates(self, rng):
        method = RecordingMethod()
        method.start(np.zeros(3))
        points = rng.standard_normal((4, 3))
        method.feedback(points)
        method.feedback(points)
        assert method.last_points.shape == (4, 3)

    def test_start_resets(self, rng):
        method = RecordingMethod()
        method.start(np.zeros(3))
        method.feedback(rng.standard_normal((4, 3)))
        method.start(np.ones(3))
        method.feedback(rng.standard_normal((2, 3)))
        assert method.last_points.shape == (2, 3)
        np.testing.assert_array_equal(method.initial_point, np.ones(3))

    def test_initial_query_is_euclidean_around_example(self, rng):
        method = RecordingMethod()
        point = rng.standard_normal(3)
        query = method.start(point)
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            query.distances(x), np.sum((x - point) ** 2, axis=1)
        )

    def test_empty_feedback_returns_initial_style_query(self, rng):
        method = RecordingMethod()
        point = rng.standard_normal(3)
        method.start(point)
        query = method.feedback(np.empty((0, 3)))
        x = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            query.distances(x), np.sum((x - point) ** 2, axis=1)
        )

    def test_score_validation(self, rng):
        method = RecordingMethod()
        method.start(np.zeros(3))
        with pytest.raises(ValueError):
            method.feedback(rng.standard_normal((3, 3)), scores=[1.0])

    def test_rejects_matrix_start(self, rng):
        with pytest.raises(ValueError):
            RecordingMethod().start(rng.standard_normal((2, 3)))
