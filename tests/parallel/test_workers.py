"""Worker-side plumbing: query payloads, the shared scan kernel, the pool."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.baselines.base import PowerMeanQuery
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.core.progressive import exact_top_k
from repro.parallel import ShardWorkerPool
from repro.parallel.workers import decode_query, encode_query, scan_shard_topk
from repro.store import FeatureStore, build_store


def make_disjunctive(rng, dim=4, g=2, diagonal=False):
    points = []
    for _ in range(g):
        if diagonal:
            diag = rng.uniform(0.5, 2.0, size=dim)
            inverse = np.diag(diag)
        else:
            diag = None
            basis = rng.normal(size=(dim, dim))
            inverse = basis @ basis.T + dim * np.eye(dim)
        points.append(
            QueryPoint(
                center=rng.normal(size=dim),
                inverse=inverse,
                weight=float(rng.uniform(0.5, 2.0)),
                diagonal=diag,
            )
        )
    return DisjunctiveQuery(points)


class PickleOnlyQuery:
    """A query type encode_query has never heard of."""

    def __init__(self, center):
        self.center = np.asarray(center, dtype=float)

    def distances(self, matrix):
        return np.linalg.norm(np.asarray(matrix, dtype=float) - self.center, axis=1)


class TestQueryPayloads:
    def test_disjunctive_round_trip(self, rng):
        query = make_disjunctive(rng)
        payload = encode_query(query)
        assert payload["kind"] == "disjunctive"
        clone = decode_query(payload)
        matrix = rng.normal(size=(50, 4))
        np.testing.assert_array_equal(clone.distances(matrix), query.distances(matrix))

    def test_diagonal_flag_survives(self, rng):
        query = make_disjunctive(rng, diagonal=True)
        clone = decode_query(encode_query(query))
        assert all(point.diagonal is not None for point in clone.points)
        matrix = rng.normal(size=(20, 4))
        np.testing.assert_array_equal(clone.distances(matrix), query.distances(matrix))

    def test_power_mean_round_trip(self, rng):
        dim = 3
        query = PowerMeanQuery(
            centers=rng.normal(size=(2, dim)),
            inverses=(np.eye(dim), 2.0 * np.eye(dim)),
            weights=np.array([1.0, 2.0]),
            alpha=-2.0,
        )
        payload = encode_query(query)
        assert payload["kind"] == "power_mean"
        clone = decode_query(payload)
        matrix = rng.normal(size=(30, dim))
        np.testing.assert_array_equal(clone.distances(matrix), query.distances(matrix))
        assert clone.alpha == query.alpha

    def test_unknown_type_falls_back_to_pickle(self, rng):
        query = PickleOnlyQuery(rng.normal(size=3))
        payload = encode_query(query)
        assert payload["kind"] == "pickle"
        clone = decode_query(payload)
        matrix = rng.normal(size=(10, 3))
        np.testing.assert_array_equal(clone.distances(matrix), query.distances(matrix))

    def test_unknown_payload_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query payload"):
            decode_query({"kind": "carrier-pigeon"})


class TestScanShardTopk:
    def test_matches_exact_top_k_with_offset(self, rng):
        query = make_disjunctive(rng, dim=5)
        shard = np.ascontiguousarray(rng.normal(size=(80, 5)), dtype="<f4")
        ids, distances, pruned, refined = scan_shard_topk(query, shard, 100, k=7)
        reference = query.distances(shard)
        top = exact_top_k(reference, 7)
        np.testing.assert_array_equal(ids, top + 100)
        np.testing.assert_array_equal(distances, reference[top])
        assert pruned + refined == 80

    def test_k_clamped_to_shard_size(self, rng):
        query = make_disjunctive(rng, dim=3)
        shard = np.ascontiguousarray(rng.normal(size=(4, 3)), dtype="<f4")
        ids, distances, _, _ = scan_shard_topk(query, shard, 0, k=10)
        assert len(ids) == 4 == len(distances)


def settled_stats(pool, busy=0, timeout=2.0):
    """Poll until done-callbacks drain (they run on an executor thread)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = pool.stats()
        if stats["busy"] == busy:
            return stats
        time.sleep(0.01)
    return pool.stats()


class TestShardWorkerPool:
    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ValueError):
            ShardWorkerPool(tmp_path / "x.qcs", n_workers=0)

    def test_pool_scans_match_serial_and_stats_settle(self, tmp_path, rng):
        vectors = rng.normal(size=(90, 4))
        path = build_store(vectors, tmp_path / "p.qcs", n_shards=3)
        store = FeatureStore.open(path)
        query = make_disjunctive(rng)
        payload = encode_query(query)
        with ShardWorkerPool(path, n_workers=1) as pool:
            for index in range(store.n_shards):
                ids, distances, _, _ = pool.run(index, payload, k=5)
                offset = store.row_offsets[index]
                expected = scan_shard_topk(query, store.shard(index), offset, 5)
                np.testing.assert_array_equal(ids, expected[0])
                np.testing.assert_array_equal(distances, expected[1])
            # A failing task pickles its exception back and is counted.
            with pytest.raises(IndexError):
                pool.run(99, payload, k=5)
            stats = settled_stats(pool)
            assert stats["workers"] == 1
            assert stats["tasks_completed"] == store.n_shards
            assert stats["tasks_failed"] == 1
            assert stats["peak_busy"] >= 1
        pool.shutdown()  # idempotent after context-manager exit


class TestPoolBatchScan:
    def test_submit_batch_matches_solo_scans(self, tmp_path, rng):
        """One worker round-trip serves a whole micro-batch, each page
        byte-identical to its solo scan."""
        vectors = rng.normal(size=(120, 4))
        path = build_store(vectors, tmp_path / "b.qcs", n_shards=2)
        store = FeatureStore.open(path)
        queries = [make_disjunctive(rng), make_disjunctive(rng, diagonal=True)]
        payloads = [encode_query(query) for query in queries]
        ks = [5, 7]
        with ShardWorkerPool(path, n_workers=1) as pool:
            for index in range(store.n_shards):
                results = pool.submit_batch(
                    index, payloads, ks, [False, False]
                ).result()
                assert len(results) == len(queries)
                offset = store.row_offsets[index]
                for query, k, (ids, distances, _, _, exact) in zip(
                    queries, ks, results
                ):
                    solo = scan_shard_topk(query, store.shard(index), offset, k)
                    assert ids.tobytes() == solo[0].tobytes()
                    assert distances.tobytes() == solo[1].tobytes()
                    assert exact is True
            stats = settled_stats(pool)
            assert stats["tasks_completed"] == store.n_shards


class TestPoolStatsLockSplit:
    """Regression tests for the stats/lifecycle lock split: metric reads
    must never block behind a (slow) worker spawn, and accounting must
    stay consistent around submit failures."""

    def test_stats_do_not_block_behind_the_lifecycle_lock(self, tmp_path):
        pool = ShardWorkerPool(tmp_path / "s.qcs", n_workers=1)
        with pool._lock:  # simulates a spawn in progress
            done = []

            def read():
                done.append((pool.stats(), pool.busy))

            reader = threading.Thread(target=read)
            reader.start()
            reader.join(timeout=2.0)
            assert not reader.is_alive(), "stats() blocked behind _lock"
        assert done and done[0][0]["busy"] == 0

    def test_failed_submit_rolls_back_in_flight(self, tmp_path):
        pool = ShardWorkerPool(tmp_path / "s.qcs", n_workers=1)

        def boom():
            raise RuntimeError("executor refused")

        with pytest.raises(RuntimeError, match="executor refused"):
            pool._track_submit(boom)
        stats = pool.stats()
        assert stats["busy"] == 0
        assert stats["peak_busy"] == 1
        assert stats["tasks_completed"] == 0
        assert stats["tasks_failed"] == 0

    def test_done_callback_classifies_outcomes(self, tmp_path):
        pool = ShardWorkerPool(tmp_path / "s.qcs", n_workers=1)
        ok, bad, dropped = Future(), Future(), Future()
        for future in (ok, bad, dropped):
            pool._track_submit(lambda future=future: future)
        assert pool.busy == 3
        ok.set_result([])
        bad.set_exception(ValueError("scan failed"))
        dropped.cancel()
        dropped.set_running_or_notify_cancel()
        stats = settled_stats(pool)
        assert stats["busy"] == 0
        assert stats["peak_busy"] == 3
        assert stats["tasks_completed"] == 1
        assert stats["tasks_failed"] == 2
