"""Cross-backend determinism: the scan backend can never change a ranking.

The acceptance-critical property of the store/process subsystem: for
the same store file, the serial in-memory scan, the thread-sharded
store scan and the multi-process store scan return **byte-identical**
pages — ids and distances — across covariance schemes, PCA-reduced
bases and tie-heavy data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QclusterConfig
from repro.core.pca import PCA
from repro.core.progressive import exact_top_k
from repro.retrieval import FeatureDatabase, QclusterMethod, SimulatedUser
from repro.service import RetrievalService
from repro.store import FeatureStore, build_store

K = 10
ROUNDS = 2
QUERY_IDS = (0, 45, 110)


def make_vectors(tie_heavy=False):
    rng = np.random.default_rng(42)
    centers = np.array(
        [[0.0, 0.0, 0.0, 0.0], [5.0, 0.0, 0.0, 0.0], [0.0, 5.0, 0.0, 5.0]]
    )
    vectors = np.concatenate(
        [center + 0.5 * rng.standard_normal((40, 4)) for center in centers]
    )
    if tie_heavy:
        # Snap to a coarse grid: many rows collide exactly, so rankings
        # are decided by the (distance, id) tie-break alone.
        vectors = np.round(vectors * 2.0) / 2.0
    labels = np.repeat(np.arange(3), 40)
    return vectors, labels


def run_pages(service, database, query_ids=QUERY_IDS, rounds=ROUNDS):
    """Drive feedback sessions; returns the raw page bytes per round."""
    transcript = []
    for query_id in query_ids:
        session = service.create_session(int(query_id))
        user = SimulatedUser(database, database.category_of(int(query_id)))
        page = service.query(session)
        transcript.append((page.ids.tobytes(), page.distances.tobytes()))
        for _ in range(rounds):
            judgment = user.judge(page.ids)
            page = service.feedback(session, judgment.relevant_indices, judgment.scores)
            transcript.append((page.ids.tobytes(), page.distances.tobytes()))
    return transcript


def backend_transcripts(store_path, database, scheme):
    """The same workload through all three scan backends."""
    factory = lambda: QclusterMethod(QclusterConfig(scheme=scheme))
    store = FeatureStore.open(store_path)
    transcripts = {}
    with RetrievalService(
        FeatureDatabase(store.as_array(), database.labels),
        method_factory=factory,
        k=K,
        use_index=False,
        n_shards=1,
    ) as service:
        transcripts["serial"] = run_pages(service, database)
    with RetrievalService(
        FeatureStore.open(store_path),
        method_factory=factory,
        k=K,
        use_index=False,
        scan_backend="threads",
    ) as service:
        transcripts["threads"] = run_pages(service, database)
    with RetrievalService(
        FeatureStore.open(store_path),
        method_factory=factory,
        k=K,
        use_index=False,
        scan_backend="processes",
        max_workers=2,
    ) as service:
        transcripts["processes"] = run_pages(service, database)
    return transcripts


@pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
def test_backends_byte_identical_across_schemes(tmp_path, scheme):
    vectors, labels = make_vectors()
    database = FeatureDatabase(vectors, labels)
    store_path = build_store(database, tmp_path / "d.qcs", n_shards=4)
    transcripts = backend_transcripts(store_path, database, scheme)
    assert transcripts["threads"] == transcripts["serial"]
    assert transcripts["processes"] == transcripts["serial"]


def test_backends_byte_identical_on_tie_heavy_data(tmp_path):
    vectors, labels = make_vectors(tie_heavy=True)
    database = FeatureDatabase(vectors, labels)
    store_path = build_store(database, tmp_path / "t.qcs", n_shards=5)
    transcripts = backend_transcripts(store_path, database, "diagonal")
    assert transcripts["threads"] == transcripts["serial"]
    assert transcripts["processes"] == transcripts["serial"]


def test_backends_byte_identical_on_pca_reduced_basis(tmp_path):
    vectors, labels = make_vectors()
    reduced = PCA(n_components=2).fit(vectors).transform(vectors)
    database = FeatureDatabase(reduced, labels)
    store_path = build_store(database, tmp_path / "p.qcs", n_shards=3)
    transcripts = backend_transcripts(store_path, database, "diagonal")
    assert transcripts["threads"] == transcripts["serial"]
    assert transcripts["processes"] == transcripts["serial"]


class TestShardMergeProperty:
    """Per-shard top-k + (distance, id) merge == single-matrix top-k."""

    @pytest.mark.parametrize("n_shards", [1, 2, 5])
    @pytest.mark.parametrize("tie_heavy", [False, True])
    def test_merge_equals_full_scan(self, rng, n_shards, tie_heavy):
        n = 97
        distances = rng.uniform(0.0, 1.0, size=n)
        if tie_heavy:
            distances = np.round(distances * 8.0) / 8.0
        bounds = np.linspace(0, n, n_shards + 1).astype(int)
        ids_parts, dist_parts = [], []
        for i in range(n_shards):
            lo, hi = bounds[i], bounds[i + 1]
            top = exact_top_k(distances[lo:hi], min(K, hi - lo))
            ids_parts.append(top + lo)
            dist_parts.append(distances[lo:hi][top])
        candidate_ids = np.concatenate(ids_parts)
        candidate_dist = np.concatenate(dist_parts)
        merged = exact_top_k(candidate_dist, K, tie_break=candidate_ids)
        full = exact_top_k(distances, K)
        np.testing.assert_array_equal(candidate_ids[merged], full)
        np.testing.assert_array_equal(candidate_dist[merged], distances[full])
