"""End-to-end instrumentation: traced pipeline stages and events.

The PR's acceptance test lives here: one traced feedback round must
produce a span tree containing at least the classify, merge, compile
and scan stages with at least one algorithmic event attached, and that
trace must export identically through the JSONL log and the console
renderer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    Tracer,
    render_span_tree,
    spans_from_jsonl,
    trace_to_jsonl_lines,
    tree_from_spans,
)
from repro.service import RetrievalService


def collect(node, into):
    into.append(node)
    for child in node.get("children", ()):
        collect(child, into)
    return into


def span_names(trace):
    return {span["name"] for span in collect(trace, [])}


def all_events(trace):
    return [event for span in collect(trace, []) for event in span["events"]]


@pytest.fixture()
def clustered_vectors():
    rng = np.random.default_rng(7)
    centers = rng.normal(scale=4.0, size=(6, 8))
    return np.concatenate(
        [center + rng.normal(scale=0.5, size=(80, 8)) for center in centers]
    )


class TestTracedFeedbackRound:
    def test_feedback_trace_contains_required_stages_and_events(
        self, clustered_vectors
    ):
        tracer = Tracer()
        with RetrievalService(clustered_vectors, k=12, tracer=tracer) as service:
            session = service.create_session(0)
            page = service.query(session)
            service.feedback(session, page.ids[:6])

        feedback = [t for t in tracer.traces() if t["name"] == "feedback"][-1]
        names = span_names(feedback)
        assert {"feedback", "classify", "merge", "compile", "scan"} <= names
        assert len(all_events(feedback)) >= 1
        event_names = {event["name"] for event in all_events(feedback)}
        assert "kernel_cache" in event_names

        # Export identity: JSONL round trip == console renderer input.
        lines = trace_to_jsonl_lines(feedback)
        (rebuilt,) = tree_from_spans(spans_from_jsonl(lines))
        assert rebuilt == feedback
        assert render_span_tree(rebuilt) == render_span_tree(feedback)

    def test_merge_events_carry_t2_statistics(self, clustered_vectors):
        tracer = Tracer()
        with RetrievalService(clustered_vectors, k=20, tracer=tracer) as service:
            session = service.create_session(0)
            page = service.query(session)
            service.feedback(session, page.ids[:10])
        events = [
            event
            for trace in tracer.traces()
            for event in all_events(trace)
            if event["name"] == "t2_merge"
        ]
        assert events, "expected at least one Hotelling T^2 merge decision"
        for event in events:
            fields = event["fields"]
            assert set(fields) >= {"accepted", "statistic", "critical", "alpha"}
            assert isinstance(fields["accepted"], bool)

    def test_index_scan_events_report_costs(self, clustered_vectors):
        tracer = Tracer()
        with RetrievalService(clustered_vectors, k=12, tracer=tracer) as service:
            session = service.create_session(0)
            service.query(session)
        query_trace = [t for t in tracer.traces() if t["name"] == "query"][-1]
        scan = [s for s in collect(query_trace, []) if s["name"] == "scan"]
        assert scan and scan[0]["attributes"]["path"] == "index"
        knn_events = [e for e in all_events(query_trace) if e["name"] == "index_knn"]
        assert knn_events
        assert knn_events[0]["fields"]["node_accesses"] >= 1

    def test_fallback_scan_collects_shard_events(self, clustered_vectors):
        tracer = Tracer()
        with RetrievalService(
            clustered_vectors, k=12, use_index=False, n_shards=3, tracer=tracer
        ) as service:
            session = service.create_session(0)
            service.query(session)
        query_trace = [t for t in tracer.traces() if t["name"] == "query"][-1]
        scan = [s for s in collect(query_trace, []) if s["name"] == "scan"]
        assert scan and scan[0]["attributes"]["path"] == "fallback"
        assert scan[0]["attributes"]["shards"] == 3

    def test_untraced_service_records_nothing_but_ranks_identically(
        self, clustered_vectors
    ):
        tracer = Tracer()
        with RetrievalService(clustered_vectors, k=12, tracer=tracer) as traced:
            session = traced.create_session(0)
            page = traced.query(session)
            traced_page = traced.feedback(session, page.ids[:6])
        with RetrievalService(clustered_vectors, k=12) as plain:
            session = plain.create_session(0)
            page = plain.query(session)
            plain_page = plain.feedback(session, page.ids[:6])
        assert np.array_equal(traced_page.ids, plain_page.ids)
        assert np.array_equal(traced_page.distances, plain_page.distances)
        assert tracer.traces()  # traced service recorded spans
        assert plain.tracer.traces() == []  # NULL_TRACER records nothing

    def test_sampled_service_traces_subset(self, clustered_vectors):
        tracer = Tracer(sample_every=2)
        with RetrievalService(clustered_vectors, k=12, tracer=tracer) as service:
            session = service.create_session(0)  # root 1: sampled
            for _ in range(4):
                service.query(session)  # cached after the first
        roots = [t["name"] for t in tracer.traces()]
        assert roots == ["create_session", "query", "query"]


class TestCoreInstrumentationEvents:
    def test_cluster_seeded_event_fields(self):
        tracer = Tracer()
        rng = np.random.default_rng(3)
        from repro.obs import activate
        from repro.retrieval.methods import QclusterMethod

        method = QclusterMethod()
        method.start(rng.normal(size=6))
        with activate(tracer), tracer.span("round"):
            method.feedback(rng.normal(size=(6, 6)))
            # A far-away second batch forces outlier seeding (Eq. 6).
            method.feedback(rng.normal(size=(6, 6)) + 50.0)
        events = [
            event
            for trace in tracer.traces()
            for event in all_events(trace)
            if event["name"] == "cluster_seeded"
        ]
        assert events
        for event in events:
            assert set(event["fields"]) >= {"radius_distance", "radius"}

    def test_kernel_cache_hit_and_miss_events(self, clustered_vectors):
        from repro.core.kernels import default_kernel_cache

        default_kernel_cache().clear()  # process-wide: drop earlier fingerprints
        tracer = Tracer()
        # cache_size=0: the twin's identical query must reach the kernel
        # layer instead of being served from the result cache.
        with RetrievalService(
            clustered_vectors, k=12, cache_size=0, tracer=tracer
        ) as service:
            first = service.create_session(0)
            service.query(first)
            second = service.create_session(0, session_id="twin")
            service.query(second)
        outcomes = [
            event["fields"]["outcome"]
            for trace in tracer.traces()
            for event in all_events(trace)
            if event["name"] == "kernel_cache"
        ]
        assert "miss" in outcomes
        assert "hit" in outcomes
