"""Distributed trace context: codec round-trips, adoption, tail sampling."""

from __future__ import annotations

import random
import string

import pytest

from repro.obs import (
    TailSamplingPolicy,
    TraceContext,
    Tracer,
    current_trace_context,
    parse_traceparent,
    with_trace_context,
)
from repro.obs.distributed import sanitize_request_id


class TestTraceparentCodec:
    def test_round_trip_with_parent_span(self):
        context = TraceContext(trace_id="ab" * 16, span_id="cd" * 8, sampled=True)
        parsed = parse_traceparent(context.to_traceparent())
        assert parsed == context

    def test_round_trip_without_parent_span(self):
        """span_id=None encodes as the all-zero parent and decodes back."""
        context = TraceContext(trace_id="ef" * 16, span_id=None, sampled=False)
        header = context.to_traceparent()
        assert header == f"00-{'ef' * 16}-{'0' * 16}-00"
        assert parse_traceparent(header) == context

    def test_random_contexts_round_trip(self):
        rng = random.Random(7)
        for _ in range(200):
            trace_id = "".join(rng.choices("0123456789abcdef", k=32))
            if trace_id == "0" * 32:
                continue
            span_id = (
                None
                if rng.random() < 0.3
                else "".join(rng.choices("0123456789abcdef", k=16))
            )
            if span_id == "0" * 16:
                span_id = None
            context = TraceContext(trace_id, span_id, rng.random() < 0.5)
            assert parse_traceparent(context.to_traceparent()) == context

    def test_nonhex_ids_still_emit_wellformed_headers(self):
        """In-process counter ids digest to header-legal hex deterministically."""
        context = TraceContext(trace_id="t0000002a", span_id="s00000003")
        header = context.to_traceparent()
        assert parse_traceparent(header) is not None
        assert header == context.to_traceparent()  # deterministic digest

    def test_to_dict_round_trip(self):
        context = TraceContext("ab" * 16, None, False)
        assert TraceContext.from_dict(context.to_dict()) == context

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-short-0000000000000000-01",
            "00-" + "g" * 32 + "-" + "0" * 16 + "-01",  # non-hex trace
            "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # reserved version
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace
            "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
            "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01-extra",
            None,
            12345,
        ],
    )
    def test_malformed_headers_never_raise(self, header):
        assert parse_traceparent(header) is None

    def test_fuzzed_garbage_never_raises(self):
        rng = random.Random(11)
        alphabet = string.printable
        for _ in range(500):
            junk = "".join(
                rng.choices(alphabet, k=rng.randrange(0, 80))
            )
            parse_traceparent(junk)  # must not raise; value unconstrained


class TestFromHeaders:
    def test_traceparent_wins_over_request_id(self):
        headers = {
            "traceparent": f"00-{'ab' * 16}-{'cd' * 8}-01",
            "X-Request-Id": "client-id-1",
        }
        context = TraceContext.from_headers(headers)
        assert context.trace_id == "ab" * 16
        assert context.span_id == "cd" * 8

    def test_hex_request_id_adopted_verbatim(self):
        context = TraceContext.from_headers({"X-Request-Id": "AB" * 16})
        assert context.trace_id == "ab" * 16
        assert context.span_id is None

    def test_freeform_request_id_digests_deterministically(self):
        first = TraceContext.from_headers({"x-request-id": "req-42"})
        second = TraceContext.from_headers({"X-REQUEST-ID": "req-42"})
        assert first.trace_id == second.trace_id
        assert parse_traceparent(first.to_traceparent()) is not None

    def test_garbage_headers_mint_fresh_context(self):
        """Garbage degrades to a fresh context — never an exception."""
        contexts = [
            TraceContext.from_headers({"traceparent": "nope", "x-request-id": "\x00"}),
            TraceContext.from_headers({}),
            TraceContext.from_headers({"x-request-id": "a" * 500}),
        ]
        for context in contexts:
            assert context.span_id is None
            assert context.sampled is True
        assert len({c.trace_id for c in contexts}) == 3  # fresh, not shared


class TestSanitizeRequestId:
    def test_accepts_header_safe_tokens(self):
        assert sanitize_request_id("req_1.2:3-x") == "req_1.2:3-x"
        assert sanitize_request_id("  padded  ") == "padded"

    @pytest.mark.parametrize(
        "value", [None, "", "has space", "crlf\r\nInjected: yes", "x" * 129]
    )
    def test_rejects_unsafe_tokens(self, value):
        assert sanitize_request_id(value) is None


class TestRootAdoption:
    def test_root_span_adopts_remote_context(self):
        tracer = Tracer()
        remote = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with with_trace_context(remote):
            with tracer.span("http_request"):
                pass
        (trace,) = tracer.traces()
        assert trace["trace_id"] == "ab" * 16
        assert trace["parent_id"] == "cd" * 8

    def test_adoption_overrides_head_sampling(self):
        """A propagated trace is recorded even when sample_every would skip it."""
        tracer = Tracer(sample_every=1000)
        with with_trace_context(TraceContext.fresh()):
            with tracer.span("query"):
                pass
        assert len(tracer.traces()) == 1

    def test_unsampled_remote_context_keeps_trace_dark(self):
        tracer = Tracer()
        with with_trace_context(TraceContext("ab" * 16, None, sampled=False)):
            with tracer.span("query"):
                pass
        assert tracer.traces() == []

    def test_child_spans_ignore_remote_context(self):
        """Only roots adopt; nesting under a local root is untouched."""
        tracer = Tracer()
        with tracer.span("root"):
            with with_trace_context(TraceContext("ab" * 16, "cd" * 8)):
                with tracer.span("inner"):
                    pass
        (trace,) = tracer.traces()
        assert trace["trace_id"] != "ab" * 16
        assert trace["children"][0]["trace_id"] == trace["trace_id"]

    def test_ambient_context_restores_on_exit(self):
        assert current_trace_context() is None
        with with_trace_context(TraceContext.fresh()):
            assert current_trace_context() is not None
        assert current_trace_context() is None


class TestTailSampling:
    def make_tracer(self, **kwargs):
        policy = TailSamplingPolicy(**kwargs)
        return Tracer(tail_sampling=policy), policy

    def test_boring_traces_dropped_at_probability_zero(self):
        tracer, _ = self.make_tracer(keep_probability=0.0)
        with tracer.span("query"):
            pass
        assert tracer.traces() == []
        assert tracer.aggregates()["tail"]["dropped"] == 1

    def test_slow_traces_always_kept(self):
        ticks = iter([0.0, 10.0])
        policy = TailSamplingPolicy(slow_threshold_s=0.25, keep_probability=0.0)
        tracer = Tracer(clock=lambda: next(ticks), tail_sampling=policy)
        with tracer.span("query"):
            pass
        (trace,) = tracer.traces()
        assert trace["duration_s"] == pytest.approx(10.0)
        assert tracer.aggregates()["tail"]["kept_slow"] == 1

    @pytest.mark.parametrize(
        "event", ["fault_injected", "retry", "result_quality", "batch_shed"]
    )
    def test_interesting_events_always_kept(self, event):
        tracer, _ = self.make_tracer(keep_probability=0.0)
        with tracer.span("query") as span:
            with tracer.span("scan") as inner:
                inner.event(event, detail="x")
            del span
        assert len(tracer.traces()) == 1
        assert tracer.aggregates()["tail"]["kept_interesting"] == 1

    def test_error_attribute_keeps_trace(self):
        tracer, _ = self.make_tracer(keep_probability=0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                raise RuntimeError("boom")
        assert len(tracer.traces()) == 1

    def test_random_keep_is_deterministic_per_seed(self):
        def kept(seed):
            tracer = Tracer(
                tail_sampling=TailSamplingPolicy(keep_probability=0.5, seed=seed)
            )
            results = []
            for _ in range(50):
                with tracer.span("query"):
                    pass
                results.append(len(tracer.traces()))
            return results

        assert kept(3) == kept(3)
        counts = kept(3)
        assert 0 < counts[-1] < 50  # some kept, some dropped

    def test_tail_counters_absent_without_policy(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        assert "tail" not in tracer.aggregates()

    def test_dropped_trace_stats_still_aggregate(self):
        """Span/event aggregates see every request, kept or dropped."""
        tracer, _ = self.make_tracer(keep_probability=0.0)
        for _ in range(3):
            with tracer.span("query"):
                pass
        assert tracer.traces() == []
        assert tracer.aggregates()["spans"]["query"]["count"] == 3
