"""Tracer core: span nesting, events, sampling, thread propagation."""

from __future__ import annotations

import contextvars
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    activate,
    add_event,
    current_span,
    current_tracer,
)
from repro.obs.tracer import NULL_SPAN


class TestSpanNesting:
    def test_root_and_children(self):
        tracer = Tracer()
        with tracer.span("feedback", session="s1"):
            with tracer.span("classify", points=5) as classify:
                classify.set("clusters_out", 2)
            with tracer.span("merge"):
                pass
        (trace,) = tracer.traces()
        assert trace["name"] == "feedback"
        assert trace["attributes"] == {"session": "s1"}
        assert [child["name"] for child in trace["children"]] == [
            "classify",
            "merge",
        ]
        classify = trace["children"][0]
        assert classify["attributes"] == {"points": 5, "clusters_out": 2}
        assert classify["parent_id"] == trace["span_id"]
        assert classify["trace_id"] == trace["trace_id"]

    def test_grandchildren_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        (trace,) = tracer.traces()
        assert trace["children"][0]["children"][0]["name"] == "c"

    def test_sibling_roots_are_separate_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        names = [trace["name"] for trace in tracer.traces()]
        assert names == ["first", "second"]
        ids = {trace["trace_id"] for trace in tracer.traces()}
        assert len(ids) == 2

    def test_durations_use_injected_clock(self):
        ticks = iter([0.0, 1.0, 3.0, 6.0])  # outer start, inner start/end, outer end
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (trace,) = tracer.traces()
        assert trace["duration_s"] == pytest.approx(6.0)
        assert trace["children"][0]["duration_s"] == pytest.approx(2.0)


class TestEvents:
    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("merge") as span:
            span.event("t2_merge", accepted=True, statistic=1.5)
        (trace,) = tracer.traces()
        (event,) = trace["events"]
        assert event["name"] == "t2_merge"
        assert event["fields"] == {"accepted": True, "statistic": 1.5}

    def test_add_event_targets_ambient_span(self):
        tracer = Tracer()
        with tracer.span("scan"):
            add_event("progressive_scan", pruned=99)
        (trace,) = tracer.traces()
        assert trace["events"][0]["fields"] == {"pruned": 99}

    def test_add_event_outside_any_trace_is_noop(self):
        add_event("orphan", x=1)  # must not raise

    def test_event_offsets_are_relative_to_span(self):
        ticks = iter([0.0, 2.5, 3.0])
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("stage") as span:
            span.event("marker")
        (trace,) = tracer.traces()
        assert trace["events"][0]["offset_s"] == pytest.approx(2.5)


class TestRingBufferAndAggregates:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(max_traces=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [t["name"] for t in tracer.traces()] == ["b", "c"]

    def test_traces_last_n(self):
        tracer = Tracer()
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [t["name"] for t in tracer.traces(last=2)] == ["b", "c"]
        assert tracer.traces(last=0) == []
        with pytest.raises(ValueError):
            tracer.traces(last=-1)

    def test_aggregates_count_spans_and_events(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("scan") as span:
                span.event("index_knn", refined=10)
        aggregates = tracer.aggregates()
        assert aggregates["spans"]["scan"]["count"] == 3
        assert aggregates["spans"]["scan"]["total_s"] >= 0.0
        assert aggregates["events"]["index_knn"] == 3

    def test_clear_drops_traces_and_aggregates(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.traces() == []
        assert tracer.aggregates() == {"spans": {}, "events": {}}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)


class TestSampling:
    def test_sample_every_traces_only_nth_root(self):
        tracer = Tracer(sample_every=3)
        for index in range(7):
            with tracer.span("round", index=index):
                with tracer.span("inner"):
                    pass
        traces = tracer.traces()
        assert [t["attributes"]["index"] for t in traces] == [0, 3, 6]
        # Unsampled roots record nothing, not even aggregates.
        assert tracer.aggregates()["spans"]["round"]["count"] == 3
        assert tracer.aggregates()["spans"]["inner"]["count"] == 3

    def test_unsampled_root_darkens_descendants_and_events(self):
        tracer = Tracer(sample_every=2)
        with tracer.span("kept"):
            pass
        with tracer.span("dropped"):
            assert current_span() is None
            add_event("ghost")
            with tracer.span("child"):
                pass
        with tracer.span("kept_again"):
            pass
        assert [t["name"] for t in tracer.traces()] == ["kept", "kept_again"]
        assert "ghost" not in tracer.aggregates()["events"]


class TestAmbientPlumbing:
    def test_default_tracer_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_activate_none_means_null(self):
        with activate(None):
            assert current_tracer() is NULL_TRACER

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", attr=1) as span:
            span.set("k", "v")
            span.event("e")
        assert span is NULL_SPAN
        assert tracer.traces() == []
        assert tracer.aggregates() == {"spans": {}, "events": {}}
        assert not tracer.enabled
        assert Tracer().enabled

    def test_copied_context_carries_span_into_worker_thread(self):
        tracer = Tracer()
        with activate(tracer), tracer.span("scan") as scan:
            contexts = [contextvars.copy_context() for _ in range(4)]

            def work(i):
                assert current_tracer() is tracer
                with tracer.span("shard", index=i):
                    add_event("progressive_scan", shard=i)

            threads = [
                threading.Thread(target=ctx.run, args=(work, i))
                for i, ctx in enumerate(contexts)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        (trace,) = tracer.traces()
        shards = trace["children"]
        assert {child["name"] for child in shards} == {"shard"}
        assert len(shards) == 4
        assert sorted(c["attributes"]["index"] for c in shards) == [0, 1, 2, 3]
        for child in shards:
            assert child["parent_id"] == trace["span_id"]
            assert child["events"][0]["name"] == "progressive_scan"
