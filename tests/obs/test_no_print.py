"""Lint gate: no ``print()`` calls in library hot-path modules.

Operational output must flow through :mod:`repro.obs` (spans, events,
metrics exposition) — a stray ``print`` in the core/index/service
layers bypasses sampling, breaks machine-readable logs, and costs
stdout I/O on hot paths.  The interactive surfaces are exempt: the CLI
and the experiment/figure reporters exist to print.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Interactive surfaces whose whole purpose is console output.
EXEMPT = ("cli.py", "experiments/")


def is_exempt(path: Path) -> bool:
    relative = path.relative_to(SRC_ROOT).as_posix()
    return any(
        relative == entry or relative.startswith(entry) for entry in EXEMPT
    )


def print_calls(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def test_library_modules_do_not_print():
    offenders = {}
    checked = 0
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if is_exempt(path):
            continue
        checked += 1
        lines = print_calls(path)
        if lines:
            offenders[path.relative_to(SRC_ROOT).as_posix()] = lines
    assert checked > 30, "lint gate scanned suspiciously few modules"
    assert not offenders, (
        "print() calls in library modules (route output through repro.obs "
        f"instead): {offenders}"
    )


def test_exemptions_are_narrow():
    """The exemption list covers only the interactive surfaces."""
    exempt_files = [
        path
        for path in SRC_ROOT.rglob("*.py")
        if is_exempt(path)
    ]
    assert all(
        "cli" in path.name or "experiments" in path.parts
        for path in exempt_files
    )
