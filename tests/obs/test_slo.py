"""SLO layer: histogram buckets, burn-rate math, Prometheus families."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    SLObjective,
    SLOTracker,
    prometheus_text,
)

from .test_prometheus import parse_exposition


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLatencyHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["counts"] == [1, 2, 3]  # cumulative, +Inf implicit
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(5.555)

    def test_boundary_value_counts_in_its_bucket(self):
        """le semantics: an observation equal to a bound belongs to it."""
        histogram = LatencyHistogram(buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.snapshot()["counts"] == [1, 1]

    def test_quantile_interpolates_from_buckets(self):
        histogram = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(99):
            histogram.observe(0.005)
        histogram.observe(0.5)
        assert histogram.quantile(0.5) <= 0.01
        assert histogram.quantile(0.999) > 0.1

    def test_default_buckets_are_sorted_and_positive(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(bound > 0 for bound in DEFAULT_BUCKETS)


class TestSLObjective:
    def test_availability_objective_judges_errors(self):
        objective = SLObjective(name="availability", target=0.999)
        assert objective.is_good(10.0, error=False)
        assert not objective.is_good(0.001, error=True)

    def test_latency_objective_judges_threshold(self):
        objective = SLObjective(
            name="latency", target=0.95, latency_threshold_s=0.5
        )
        assert objective.is_good(0.4, error=False)
        assert not objective.is_good(0.6, error=False)
        assert not objective.is_good(0.1, error=True)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 2.0])
    def test_target_must_be_a_fraction(self, target):
        with pytest.raises(ValueError):
            SLObjective(name="bad", target=target)


class TestBurnRates:
    def test_burn_rate_is_bad_fraction_over_budget(self):
        """burn = bad_fraction / (1 - target): 1.0 means the budget is
        being spent exactly as fast as it accrues."""
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=(SLObjective(name="availability", target=0.99),),
            windows=(300.0,),
            clock=clock,
        )
        for index in range(100):
            tracker.observe("query", 0.01, error=(index == 0))
        rates = tracker.burn_rates()
        assert rates["availability"]["300s"] == pytest.approx(1.0)

    def test_old_samples_age_out_of_the_window(self):
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=(SLObjective(name="availability", target=0.9),),
            windows=(300.0,),
            clock=clock,
        )
        tracker.observe("query", 0.01, error=True)
        assert tracker.burn_rates()["availability"]["300s"] > 0
        clock.advance(301.0)
        tracker.observe("query", 0.01, error=False)
        assert tracker.burn_rates()["availability"]["300s"] == 0.0

    def test_windows_are_independent(self):
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=(SLObjective(name="availability", target=0.9),),
            windows=(300.0, 3600.0),
            clock=clock,
        )
        tracker.observe("query", 0.01, error=True)
        clock.advance(600.0)
        tracker.observe("query", 0.01, error=False)
        rates = tracker.burn_rates()["availability"]
        assert rates["300s"] == 0.0
        assert rates["3600s"] == pytest.approx(5.0)  # 0.5 bad / 0.1 budget

    def test_empty_window_burns_nothing(self):
        tracker = SLOTracker()
        for rates in tracker.burn_rates().values():
            assert all(rate == 0.0 for rate in rates.values())


class TestSnapshotShape:
    def test_histograms_keyed_by_route_tenant_quality(self):
        tracker = SLOTracker()
        tracker.observe("query", 0.01, tenant="acme", exact=True)
        tracker.observe("query", 0.02, tenant="acme", exact=False)
        tracker.observe("feedback", 0.03, tenant="globex", error=True)
        keys = {
            (entry["route"], entry["tenant"], entry["quality"])
            for entry in tracker.snapshot()["histograms"]
        }
        assert keys == {
            ("query", "acme", "exact"),
            ("query", "acme", "degraded"),
            ("feedback", "globex", "error"),
        }

    def test_objective_windows_report_totals(self):
        tracker = SLOTracker()
        tracker.observe("query", 0.01)
        snapshot = tracker.snapshot()
        names = {entry["name"] for entry in snapshot["objectives"]}
        assert names == {"availability", "latency"}
        for entry in snapshot["objectives"]:
            for stats in entry["windows"].values():
                assert stats["total"] == 1


class TestPrometheusFamilies:
    def make_snapshot(self):
        tracker = SLOTracker()
        tracker.observe("query", 0.01, tenant="acme", exact=True)
        tracker.observe("query", 0.7, tenant="acme", exact=False)
        tracker.observe("feedback", 0.02, error=True)
        return {"slo": tracker.snapshot()}

    def test_histogram_family_grammar(self):
        families = parse_exposition(prometheus_text(self.make_snapshot()))
        family = families["repro_request_duration_seconds"]
        assert family["type"] == "histogram"
        buckets = [
            (labels, value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket")
        ]
        assert buckets, "histogram must emit _bucket samples"
        inf = [
            (labels, value)
            for labels, value in buckets
            if labels["le"] == "+Inf"
        ]
        assert inf, "every series must close with le=+Inf"
        for labels, _ in buckets:
            assert set(labels) == {"route", "tenant", "quality", "le"}

    def test_bucket_counts_are_cumulative_and_match_count(self):
        families = parse_exposition(prometheus_text(self.make_snapshot()))
        family = families["repro_request_duration_seconds"]
        series = {}
        for name, labels, value in family["samples"]:
            key = (labels.get("route"), labels.get("tenant"), labels.get("quality"))
            series.setdefault(key, {})[
                (name.rsplit("_", 1)[-1], labels.get("le"))
            ] = float(value)
        for key, samples in series.items():
            counts = [
                value
                for (kind, le), value in sorted(
                    (item for item in samples.items() if item[0][0] == "bucket"),
                    key=lambda item: float(item[0][1]),
                )
            ]
            assert counts == sorted(counts), f"non-monotone buckets for {key}"
            assert counts[-1] == samples[("count", None)]

    def test_burn_rate_gauge_labels(self):
        families = parse_exposition(prometheus_text(self.make_snapshot()))
        family = families["repro_slo_error_budget_burn_rate"]
        assert family["type"] == "gauge"
        labels_seen = {
            (labels["objective"], labels["window"])
            for _, labels, _ in family["samples"]
        }
        assert ("availability", "300s") in labels_seen
        assert ("latency", "3600s") in labels_seen

    def test_absent_slo_section_emits_no_families(self):
        families = parse_exposition(prometheus_text({"counters": {"queries": 1}}))
        assert "repro_request_duration_seconds" not in families
        assert "repro_slo_error_budget_burn_rate" not in families

    def test_live_service_exposition_carries_slo_families(self, two_blob_data):
        from repro.retrieval import FeatureDatabase
        from repro.service import RetrievalService

        vectors, labels = two_blob_data
        with RetrievalService(
            FeatureDatabase(vectors, labels), k=5, use_index=False, n_shards=1
        ) as service:
            session_id = service.create_session(0, tenant="acme")
            service.query(session_id)
            families = parse_exposition(service.prometheus_metrics())
        family = families["repro_request_duration_seconds"]
        count = [
            (labels, value)
            for name, labels, value in family["samples"]
            if name.endswith("_count")
        ]
        assert count[0][0]["tenant"] == "acme"
        assert float(count[0][1]) == 1.0
