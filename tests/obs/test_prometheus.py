"""Prometheus exposition: values, families, and text-format grammar."""

from __future__ import annotations

import re

import pytest

from repro.obs import Tracer, prometheus_text
from repro.service import ServiceMetrics

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def parse_exposition(text: str):
    """Validate ``text`` against the text-format (v0.0.4) grammar.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``
    and raises AssertionError on any malformed line, unknown family, or
    sample appearing before its TYPE header.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    current = None
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert _METRIC_NAME.match(name), name
            assert help_text, f"HELP without text: {line!r}"
            families[name] = {"type": None, "help": help_text, "samples": []}
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, "TYPE must follow its HELP line"
            assert kind in ("counter", "gauge", "summary", "histogram", "untyped")
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if base.endswith(suffix) and base[: -len(suffix)] in families:
                base = base[: -len(suffix)]
        assert base in families, f"sample {name} outside any declared family"
        assert families[base]["type"] is not None
        labels = {}
        raw = match.group("labels")
        if raw:
            for part in raw.split(","):
                label = _LABEL.match(part)
                assert label, f"malformed label: {part!r} in {line!r}"
                assert _LABEL_NAME.match(label.group("key"))
                labels[label.group("key")] = label.group("value")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            float(value)  # must parse
        families[base]["samples"].append((name, labels, value))
    return families


def make_snapshot():
    metrics = ServiceMetrics()
    metrics.increment("queries", 7)
    metrics.increment("cache_hits", 3)
    metrics.increment("cache_misses", 1)
    for value in (0.010, 0.020, 0.030, 0.040):
        metrics.observe("query", value)
    snapshot = metrics.snapshot()
    snapshot["store"] = {"live_sessions": 2, "capacity": 64}
    snapshot["cache"] = {"pages": 5, "capacity": 128, "hit_rate": 0.75}
    return snapshot


class TestGrammar:
    def test_full_exposition_parses(self):
        tracer = Tracer()
        with tracer.span("feedback"):
            with tracer.span("classify") as span:
                span.event("cluster_seeded", radius=1.0)
        text = prometheus_text(make_snapshot(), tracer=tracer)
        families = parse_exposition(text)
        assert "repro_events_total" in families
        assert "repro_stage_duration_seconds" in families
        assert "repro_spans_total" in families
        assert "repro_trace_events_total" in families

    def test_every_family_has_samples_and_one_header(self):
        text = prometheus_text(make_snapshot())
        families = parse_exposition(text)
        for name, family in families.items():
            assert family["samples"], f"family {name} has no samples"
        assert text.count("# TYPE repro_events_total ") == 1


class TestValues:
    def test_counter_values(self):
        families = parse_exposition(prometheus_text(make_snapshot()))
        samples = {
            labels["counter"]: value
            for _, labels, value in families["repro_events_total"]["samples"]
        }
        assert samples["queries"] == "7"
        assert samples["cache_hits"] == "3"

    def test_summary_quantiles_sum_count(self):
        families = parse_exposition(prometheus_text(make_snapshot()))
        samples = families["repro_stage_duration_seconds"]["samples"]
        assert families["repro_stage_duration_seconds"]["type"] == "summary"
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        quantiles = {
            labels["quantile"]
            for labels, _ in by_name["repro_stage_duration_seconds"]
        }
        assert quantiles == {"0.5", "0.95"}
        (labels, count) = by_name["repro_stage_duration_seconds_count"][0]
        assert labels == {"stage": "query"}
        assert float(count) == 4.0
        (_, total) = by_name["repro_stage_duration_seconds_sum"][0]
        assert float(total) == pytest.approx(0.1)

    def test_gauges_present(self):
        families = parse_exposition(prometheus_text(make_snapshot()))
        assert families["repro_cache_hit_rate"]["samples"][0][2] == "0.75"
        assert "repro_uptime_seconds" in families
        assert "repro_store_info" in families

    def test_tracer_aggregates_exported(self):
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("scan") as span:
                span.event("index_knn", refined=10)
        families = parse_exposition(prometheus_text({}, tracer=tracer))
        spans = {
            labels["name"]: value
            for _, labels, value in families["repro_spans_total"]["samples"]
        }
        assert spans["scan"] == "2"
        events = {
            labels["event"]: value
            for _, labels, value in families["repro_trace_events_total"]["samples"]
        }
        assert events["index_knn"] == "2"

    def test_label_escaping(self):
        snapshot = {"counters": {'weird"name\\with\nstuff': 1}}
        text = prometheus_text(snapshot)
        parse_exposition(text)  # must still satisfy the grammar

    def test_namespace_override(self):
        families = parse_exposition(
            prometheus_text(make_snapshot(), namespace="imgsearch")
        )
        assert "imgsearch_events_total" in families

    def test_empty_snapshot_yields_valid_empty_exposition(self):
        assert prometheus_text({}) == "\n"


class TestStoreAndPoolFamilies:
    """The feature-store / worker-pool families added by the store PR."""

    def make_store_snapshot(self):
        snapshot = make_snapshot()
        snapshot["counters"]["store_block_reads_workers"] = 12
        snapshot["feature_store"] = {
            "epoch": 3,
            "n": 120,
            "dimension": 3,
            "n_shards": 4,
            "blocks": 5,
            "block_reads": 17,
            "quarantined_blocks": 1,
            "fingerprint": "deadbeef:3",
        }
        snapshot["worker_pool"] = {
            "workers": 4,
            "busy": 2,
            "peak_busy": 4,
            "tasks_completed": 31,
            "tasks_failed": 1,
        }
        return snapshot

    def test_block_reads_counter(self):
        families = parse_exposition(prometheus_text(self.make_store_snapshot()))
        family = families["repro_store_block_reads_total"]
        assert family["type"] == "counter"
        assert family["samples"][0][2] == "17"

    def test_worker_pool_busy_gauge(self):
        families = parse_exposition(prometheus_text(self.make_store_snapshot()))
        family = families["repro_worker_pool_busy"]
        assert family["type"] == "gauge"
        assert family["samples"][0][2] == "2"

    def test_info_sections_exported_and_grammar_clean(self):
        text = prometheus_text(self.make_store_snapshot())
        families = parse_exposition(text)  # grammar holds with both sections
        store_info = {
            labels["field"]: value
            for _, labels, value in families["repro_feature_store_info"]["samples"]
        }
        assert store_info["quarantined_blocks"] == "1"
        assert "fingerprint" not in store_info  # strings cannot be samples
        pool_info = {
            labels["field"]: value
            for _, labels, value in families["repro_worker_pool_info"]["samples"]
        }
        assert pool_info["tasks_completed"] == "31"
        assert pool_info["peak_busy"] == "4"

    def test_absent_sections_emit_no_store_families(self):
        families = parse_exposition(prometheus_text(make_snapshot()))
        assert "repro_store_block_reads_total" not in families
        assert "repro_worker_pool_busy" not in families
        assert "repro_worker_pool_info" not in families

    def test_live_service_snapshot_round_trips(self, tmp_path):
        import numpy as np

        from repro.service import RetrievalService
        from repro.store import FeatureStore, build_store

        rng = np.random.default_rng(3)
        path = build_store(rng.normal(size=(64, 4)), tmp_path / "m.qcs", n_shards=2)
        store = FeatureStore.open(path)
        with RetrievalService(store, k=5, use_index=False) as service:
            session = service.create_session(np.zeros(4))
            service.query(session)
            text = prometheus_text(service.metrics_snapshot())
        families = parse_exposition(text)
        assert float(families["repro_store_block_reads_total"]["samples"][0][2]) > 0


class TestBatchingFamilies:
    def batching_snapshot(self):
        snapshot = make_snapshot()
        snapshot["batching"] = {
            "submitted": 24,
            "batches": 9,
            "batched_queries": 24,
            "queue_depth": 2,
            "peak_queue_depth": 11,
            "shed": 1,
            "fallbacks": 0,
            "mean_batch_size": 2.6667,
            "p50_batch_size": 2.0,
            "max_batch_size": 6.0,
            "tenants_served": {"acme": 16, "globex": 8},
        }
        return snapshot

    def test_batch_families_exported(self):
        families = parse_exposition(prometheus_text(self.batching_snapshot()))
        assert families["repro_batch_queue_depth"]["type"] == "gauge"
        assert families["repro_batches_total"]["type"] == "counter"
        assert families["repro_batched_queries_total"]["type"] == "counter"
        assert families["repro_batch_size"]["type"] == "summary"
        depth = families["repro_batch_queue_depth"]["samples"]
        assert depth == [("repro_batch_queue_depth", {}, "2")]
        assert families["repro_batches_total"]["samples"][0][2] == "9"

    def test_batch_size_summary_shape(self):
        families = parse_exposition(prometheus_text(self.batching_snapshot()))
        samples = {
            (name, labels.get("quantile")): value
            for name, labels, value in families["repro_batch_size"]["samples"]
        }
        assert samples[("repro_batch_size", "0.5")] == "2"
        assert samples[("repro_batch_size", "1")] == "6"
        assert samples[("repro_batch_size_sum", None)] == "24"
        assert samples[("repro_batch_size_count", None)] == "9"

    def test_tenant_counter_labels(self):
        families = parse_exposition(prometheus_text(self.batching_snapshot()))
        tenants = {
            labels["tenant"]: value
            for _, labels, value in families["repro_batch_tenant_queries_total"][
                "samples"
            ]
        }
        assert tenants == {"acme": "16", "globex": "8"}

    def test_numeric_fields_land_in_the_info_section(self):
        families = parse_exposition(prometheus_text(self.batching_snapshot()))
        fields = {
            labels["field"]
            for _, labels, _ in families["repro_batching_info"]["samples"]
        }
        assert "shed" in fields
        assert "peak_queue_depth" in fields

    def test_absent_batching_emits_no_batch_families(self):
        families = parse_exposition(prometheus_text(make_snapshot()))
        assert "repro_batch_queue_depth" not in families
        assert "repro_batches_total" not in families

    def test_live_batched_service_exposition(self, two_blob_data):
        """A real batched service's /metrics output carries the batch
        families and stays grammar-clean."""
        from repro.retrieval import FeatureDatabase
        from repro.service import BatchingConfig, RetrievalService

        vectors, labels = two_blob_data
        database = FeatureDatabase(vectors, labels)
        with RetrievalService(
            database,
            k=5,
            use_index=False,
            n_shards=1,
            batching=BatchingConfig(max_batch=4, max_wait_s=0.001),
        ) as service:
            session_id = service.create_session(0, tenant="acme")
            service.query(session_id)
            families = parse_exposition(service.prometheus_metrics())
        assert families["repro_batched_queries_total"]["samples"][0][2] == "1"
        tenant_samples = families["repro_batch_tenant_queries_total"]["samples"]
        assert tenant_samples[0][1] == {"tenant": "acme"}
