"""Exporters: JSONL round trips, file sink, console renderer."""

from __future__ import annotations

import json

import numpy as np

from repro.obs import (
    JsonlTraceLog,
    Tracer,
    render_span_tree,
    spans_from_jsonl,
    trace_to_jsonl_lines,
    tree_from_spans,
)


def build_trace():
    tracer = Tracer()
    with tracer.span("feedback", session="s1") as root:
        root.event("result_cache", outcome="miss")
        with tracer.span("classify", points=4) as classify:
            classify.event("cluster_seeded", radius_distance=2.5, radius=1.0)
        with tracer.span("scan", path="index"):
            with tracer.span("refine", candidates=10):
                pass
    return tracer.traces()[0]


class TestJsonl:
    def test_one_line_per_span_preorder(self):
        trace = build_trace()
        lines = trace_to_jsonl_lines(trace)
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["feedback", "classify", "scan", "refine"]
        for line in lines:
            assert "children" not in json.loads(line)

    def test_round_trip_rebuilds_identical_tree(self):
        trace = build_trace()
        lines = trace_to_jsonl_lines(trace)
        (rebuilt,) = tree_from_spans(spans_from_jsonl(lines))
        assert rebuilt == trace

    def test_round_trip_matches_console_renderer(self):
        """The acceptance identity: JSONL and the console view render
        the same payload."""
        trace = build_trace()
        (rebuilt,) = tree_from_spans(spans_from_jsonl(trace_to_jsonl_lines(trace)))
        assert render_span_tree(rebuilt) == render_span_tree(trace)

    def test_numpy_values_serialize(self):
        tracer = Tracer()
        with tracer.span("scan", k=np.int64(5)) as span:
            span.event("stats", pruned=np.int64(3), survivors=np.array([4, 2]))
        lines = trace_to_jsonl_lines(tracer.traces()[0])
        record = json.loads(lines[0])
        assert record["attributes"]["k"] == 5
        assert record["events"][0]["fields"] == {"pruned": 3, "survivors": [4, 2]}

    def test_multiple_traces_in_one_stream(self):
        lines = trace_to_jsonl_lines(build_trace()) + trace_to_jsonl_lines(
            build_trace()
        )
        roots = tree_from_spans(spans_from_jsonl(lines))
        assert len(roots) == 2

    def test_blank_lines_skipped(self):
        lines = ["", *trace_to_jsonl_lines(build_trace()), "   "]
        assert len(spans_from_jsonl(lines)) == 4


class TestJsonlTraceLog:
    def test_appends_and_counts(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = JsonlTraceLog(str(path))
        assert log.export(build_trace()) == 4
        assert log.export(build_trace()) == 4
        assert log.spans_written == 8
        content = path.read_text(encoding="utf-8").splitlines()
        assert len(content) == 8
        roots = tree_from_spans(spans_from_jsonl(content))
        assert [root["name"] for root in roots] == ["feedback", "feedback"]

    def test_export_all_drains_tracer(self, tmp_path):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("round"):
                pass
        log = JsonlTraceLog(str(tmp_path / "all.jsonl"))
        assert log.export_all(tracer) == 3
        assert log.export_all(tracer, last=1) == 1


class TestRenderSpanTree:
    def test_renders_every_span_and_event_once(self):
        trace = build_trace()
        text = render_span_tree(trace)
        for name in ("feedback", "classify", "scan", "refine"):
            assert text.count(f"{name} (") == 1
        assert text.count("• cluster_seeded") == 1
        assert text.count("• result_cache") == 1

    def test_shows_attributes_and_header(self):
        text = render_span_tree(build_trace())
        assert text.startswith("trace t")
        assert "[session=s1]" in text
        assert "[points=4]" in text
        assert "path=index" in text

    def test_tree_connectors(self):
        text = render_span_tree(build_trace())
        assert "├─ classify" in text
        assert "└─ scan" in text
        assert "└─ refine" in text
